#include <gtest/gtest.h>

#include "core/compressed_rep.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::AddRelation;
using testing::InterestingBoundValuations;
using testing::IsStrictlySortedLex;
using testing::OracleAnswer;

std::unique_ptr<CompressedRep> MustBuild(const AdornedView& view,
                                         const Database& db, double tau) {
  CompressedRepOptions options;
  options.tau = tau;
  auto rep = CompressedRep::Build(view, db, options);
  CQC_CHECK(rep.ok()) << rep.status().message();
  return std::move(rep).value();
}

// Checks every interesting access request against the oracle: same set of
// tuples, strictly lexicographic order (hence no duplicates).
void CheckAllRequests(const AdornedView& view, const Database& db,
                      const CompressedRep& rep) {
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    auto e = rep.Answer(vb);
    std::vector<Tuple> got = CollectAll(*e);
    EXPECT_TRUE(IsStrictlySortedLex(got)) << rep.view().ToString();
    EXPECT_EQ(got, OracleAnswer(view, db, vb))
        << view.ToString() << " tau=" << rep.tau();
  }
}

TEST(CompressedRepTest, TriangleBfbSmall) {
  Database db;
  MakeRandomGraph(db, "R", 12, 60, /*symmetric=*/true, 7);
  AdornedView view = TriangleView("bfb");
  for (double tau : {1.0, 2.0, 8.0, 64.0, 1e6}) {
    auto rep = MustBuild(view, db, tau);
    CheckAllRequests(view, db, *rep);
  }
}

TEST(CompressedRepTest, TriangleAllAdornments) {
  Database db;
  MakeRandomGraph(db, "R", 10, 45, /*symmetric=*/true, 19);
  for (const char* ad : {"fff", "bff", "fbf", "ffb", "bbf", "bfb", "fbb",
                         "bbb"}) {
    AdornedView view = TriangleView(ad);
    auto rep = MustBuild(view, db, 4.0);
    CheckAllRequests(view, db, *rep);
  }
}

TEST(CompressedRepTest, RunningExampleAllTaus) {
  Database db;
  Rng rng(3);
  auto make = [&](const std::string& name, uint64_t seed) {
    Rng local(seed);
    std::vector<Tuple> rows;
    for (int i = 0; i < 60; ++i)
      rows.push_back({local.UniformRange(1, 4), local.UniformRange(1, 6),
                      local.UniformRange(1, 6)});
    AddRelation(db, name, 3, rows);
  };
  make("R1", 11);
  make("R2", 12);
  make("R3", 13);
  AdornedView view = RunningExampleView();
  for (double tau : {1.0, 4.0, 16.0, 256.0}) {
    auto rep = MustBuild(view, db, tau);
    CheckAllRequests(view, db, *rep);
  }
}

TEST(CompressedRepTest, StarJoin) {
  Database db;
  for (int i = 1; i <= 3; ++i)
    MakeRandomGraph(db, "R" + std::to_string(i), 14, 70, false, 100 + i);
  AdornedView view = StarView(3);
  for (double tau : {1.0, 3.0, 27.0}) {
    auto rep = MustBuild(view, db, tau);
    EXPECT_NEAR(rep->stats().alpha, 3.0, 1e-6);  // Example 7 slack
    CheckAllRequests(view, db, *rep);
  }
}

TEST(CompressedRepTest, PathQueryTheorem1) {
  Database db;
  MakePathRelations(db, "R", 4, 12, 50, 44);
  AdornedView view = PathView(4);
  for (double tau : {1.0, 8.0}) {
    auto rep = MustBuild(view, db, tau);
    CheckAllRequests(view, db, *rep);
  }
}

TEST(CompressedRepTest, LoomisWhitney3) {
  Database db;
  MakeLoomisWhitneyRelations(db, "S", 3, 10, 50, 55);
  AdornedView view = LoomisWhitneyView(3);
  auto rep = MustBuild(view, db, 4.0);
  CheckAllRequests(view, db, *rep);
}

TEST(CompressedRepTest, SetIntersection) {
  Database db;
  MakeSetFamily(db, "R", 8, 30, 120, 0.9, 66);
  AdornedView view = SetIntersectionView();
  for (double tau : {1.0, 4.0, 32.0}) {
    auto rep = MustBuild(view, db, tau);
    CheckAllRequests(view, db, *rep);
  }
}

TEST(CompressedRepTest, BooleanAdornedView) {
  Database db;
  AddRelation(db, "R", 2, {{1, 2}, {2, 3}});
  auto view = ParseAdornedView("Q^bb(x,y) = R(x,y)");
  ASSERT_TRUE(view.ok());
  auto rep = MustBuild(view.value(), db, 1.0);
  EXPECT_TRUE(rep->AnswerExists({1, 2}));
  EXPECT_FALSE(rep->AnswerExists({1, 3}));
  auto e = rep->Answer({2, 3});
  Tuple t;
  ASSERT_TRUE(e->Next(&t));
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(e->Next(&t));
}

TEST(CompressedRepTest, FullEnumerationView) {
  Database db;
  MakeRandomGraph(db, "R", 10, 40, true, 5);
  AdornedView view = TriangleView("fff");
  auto rep = MustBuild(view, db, 6.0);
  auto got = CollectAll(*rep->Answer({}));
  EXPECT_TRUE(IsStrictlySortedLex(got));
  EXPECT_EQ(got, OracleAnswer(view, db, {}));
}

TEST(CompressedRepTest, EmptyRelation) {
  Database db;
  AddRelation(db, "R", 2, {});
  auto view = ParseAdornedView("Q^bf(x,y) = R(x,y)");
  ASSERT_TRUE(view.ok());
  auto rep = MustBuild(view.value(), db, 1.0);
  EXPECT_FALSE(rep->AnswerExists({1}));
}

TEST(CompressedRepTest, SingleTupleRelation) {
  Database db;
  AddRelation(db, "R", 2, {{5, 9}});
  auto view = ParseAdornedView("Q^bf(x,y) = R(x,y)");
  ASSERT_TRUE(view.ok());
  auto rep = MustBuild(view.value(), db, 1.0);
  EXPECT_EQ(CollectAll(*rep->Answer({5})), (std::vector<Tuple>{{9}}));
  EXPECT_TRUE(CollectAll(*rep->Answer({6})).empty());
}

TEST(CompressedRepTest, RejectsNonNaturalJoin) {
  Database db;
  AddRelation(db, "R", 2, {{1, 1}});
  auto view = ParseAdornedView("Q^bf(x,y) = R(x,x)");  // y unused -> invalid
  ASSERT_FALSE(view.ok());  // head var y not in body
  auto view2 = ParseAdornedView("Q^b(x) = R(x,x)");
  ASSERT_TRUE(view2.ok());
  CompressedRepOptions options;
  EXPECT_FALSE(CompressedRep::Build(view2.value(), db, options).ok());
}

TEST(CompressedRepTest, RejectsBadCover) {
  Database db;
  AddRelation(db, "R", 2, {{1, 1}});
  auto view = ParseAdornedView("Q^bf(x,y) = R(x,y)");
  ASSERT_TRUE(view.ok());
  CompressedRepOptions options;
  options.cover = std::vector<double>{0.2};  // does not cover x or y
  EXPECT_FALSE(CompressedRep::Build(view.value(), db, options).ok());
  options.cover = std::vector<double>{1.0, 1.0};  // wrong arity
  EXPECT_FALSE(CompressedRep::Build(view.value(), db, options).ok());
}

TEST(CompressedRepTest, SpaceShrinksAsTauGrows) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 12);
  AdornedView view = TriangleView("bfb");
  auto tight = MustBuild(view, db, 1.0);
  auto loose = MustBuild(view, db, 64.0);
  EXPECT_GT(tight->stats().dict_entries, loose->stats().dict_entries);
  EXPECT_GE(tight->stats().tree_nodes, loose->stats().tree_nodes);
}

TEST(CompressedRepTest, NormalizedViewWithConstants) {
  Database db;
  AddRelation(db, "R", 3, {{1, 2, 7}, {3, 4, 7}, {5, 6, 8}});
  AddRelation(db, "S", 2, {{2, 10}, {4, 20}});
  auto raw = ParseAdornedView("Q^bff(x,y,z) = R(x,y,7), S(y,z)");
  ASSERT_TRUE(raw.ok());
  auto norm = NormalizeView(raw.value(), db);
  ASSERT_TRUE(norm.ok()) << norm.status().message();
  CompressedRepOptions options;
  options.tau = 2.0;
  auto rep = CompressedRep::Build(norm.value().view, db, options,
                                  &norm.value().aux_db);
  ASSERT_TRUE(rep.ok()) << rep.status().message();
  auto got = CollectAll(*rep.value()->Answer({1}));
  EXPECT_EQ(got, (std::vector<Tuple>{{2, 10}}));
  EXPECT_TRUE(CollectAll(*rep.value()->Answer({5})).empty());
}

// Property sweep: random instances x adornments x tau.
class CompressedRepSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(CompressedRepSweep, MatchesOracle) {
  auto [seed, tau] = GetParam();
  Database db;
  Rng rng(seed);
  auto rand_rel = [&](const std::string& name, int arity) {
    std::vector<Tuple> rows;
    int n = 25 + (int)rng.Uniform(40);
    for (int i = 0; i < n; ++i) {
      Tuple t(arity);
      for (auto& v : t) v = rng.UniformRange(1, 7);
      rows.push_back(t);
    }
    AddRelation(db, name, arity, rows);
  };
  rand_rel("R", 2);
  rand_rel("S", 2);
  rand_rel("T", 3);
  auto view = ParseAdornedView("Q^bffb(x,y,z,w) = R(x,y), S(y,z), T(z,w,x)");
  ASSERT_TRUE(view.ok());
  auto rep = MustBuild(view.value(), db, tau);
  CheckAllRequests(view.value(), db, *rep);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompressedRepSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(1.0, 4.0, 64.0)));

}  // namespace
}  // namespace cqc

// Heap-vs-mmap differential suite: the zero-copy loader must be
// observationally identical to the heap loader on every enumeration API —
// Answer, AnswerRange, NextBatch, Resume, AnswerExists — across the
// standard view families, and a save -> mmap-load -> save round trip must
// reproduce the file byte for byte. Plus RepFile unit coverage and a
// concurrent-probe smoke test for the lazily built dictionary slots.
#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/cursor.h"
#include "core/rep_file.h"
#include "core/serialization.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::InterestingBoundValuations;
using testing::OracleAnswer;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::vector<Tuple> DrainInSmallBatches(TupleEnumerator& e, int arity) {
  TupleBuffer buf(arity);
  std::vector<Tuple> out;
  constexpr size_t kBatch = 3;  // deliberately tiny: many refill boundaries
  for (;;) {
    buf.Clear();
    const size_t n = e.NextBatch(&buf, kBatch);
    for (size_t i = 0; i < n; ++i) out.push_back(buf[i].ToTuple());
    if (n < kBatch) break;
  }
  return out;
}

/// Runs every serving API on both reps for every interesting bound
/// valuation and requires byte-identical streams.
void ExpectIdenticalServing(const AdornedView& view, const Database& db,
                            const CompressedRep& heap,
                            const CompressedRep& mapped) {
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    const std::vector<Tuple> expect = CollectAll(*heap.Answer(vb));
    EXPECT_EQ(CollectAll(*mapped.Answer(vb)), expect);
    EXPECT_EQ(expect, OracleAnswer(view, db, vb));
    EXPECT_EQ(mapped.AnswerExists(vb), heap.AnswerExists(vb));
    if (view.num_free() == 0) continue;

    // Range-restricted enumeration: the full range and an answer-derived
    // subrange (endpoints taken from actual outputs, so it is non-trivial).
    {
      auto full = mapped.AnswerRange(vb, mapped.FullRange());
      EXPECT_EQ(CollectAll(*full), expect);
    }
    if (expect.size() >= 2) {
      const FInterval sub{expect[1], expect[expect.size() / 2]};
      EXPECT_EQ(CollectAll(*mapped.AnswerRange(vb, sub)),
                CollectAll(*heap.AnswerRange(vb, sub)));
    }

    // Batched drain with many refill boundaries.
    {
      auto e = mapped.Answer(vb);
      EXPECT_EQ(DrainInSmallBatches(*e, view.num_free()), expect);
    }

    // Pause mid-stream on the mapped rep, resume on both: identical tails.
    if (!expect.empty()) {
      CursorEnumerator paused(mapped.Answer(vb));
      Tuple t;
      const size_t consumed = (expect.size() + 1) / 2;
      for (size_t i = 0; i < consumed; ++i) ASSERT_TRUE(paused.Next(&t));
      const std::vector<Tuple> expect_tail(expect.begin() + consumed,
                                           expect.end());
      auto resumed_m = mapped.Resume(vb, paused.cursor());
      ASSERT_TRUE(resumed_m.ok()) << resumed_m.status().message();
      EXPECT_EQ(CollectAll(*resumed_m.value()), expect_tail);
      auto resumed_h = heap.Resume(vb, paused.cursor());
      ASSERT_TRUE(resumed_h.ok()) << resumed_h.status().message();
      EXPECT_EQ(CollectAll(*resumed_h.value()), expect_tail);
    }
  }
}

/// Build -> save -> load both ways -> differential serving -> re-save the
/// mapped rep and require byte identity with the original file.
void RunFamily(const std::string& name, const AdornedView& view,
               const Database& db, double tau) {
  SCOPED_TRACE(name + " tau=" + std::to_string(tau));
  CompressedRepOptions copt;
  copt.tau = tau;
  auto built = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(built.ok()) << built.status().message();
  const std::string path = TempPath(name + ".cqcrep");
  ASSERT_TRUE(SaveCompressedRep(*built.value(), path).ok());

  auto heap = LoadCompressedRep(view, db, path);
  ASSERT_TRUE(heap.ok()) << heap.status().message();
  auto mapped = MmapCompressedRep(view, db, path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  EXPECT_EQ(heap.value()->stats().mapped_bytes, 0u);
  EXPECT_EQ(heap.value()->backing(), nullptr);
  EXPECT_NE(mapped.value()->backing(), nullptr);
  if (mapped.value()->stats().tree_nodes > 0)
    EXPECT_GT(mapped.value()->stats().mapped_bytes, 0u);
  // Both loaders agree with the builder on the structural stats.
  EXPECT_EQ(mapped.value()->stats().tree_nodes,
            built.value()->stats().tree_nodes);
  EXPECT_EQ(mapped.value()->stats().dict_entries,
            built.value()->stats().dict_entries);

  ExpectIdenticalServing(view, db, *heap.value(), *mapped.value());

  // The mapped rep must serialize back to the identical file.
  const std::string resaved = TempPath(name + "_resave.cqcrep");
  ASSERT_TRUE(SaveCompressedRep(*mapped.value(), resaved).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, ReadFileBytes(resaved));
}

TEST(MmapLoadTest, TriangleBoundAcrossTaus) {
  Database db;
  MakeRandomGraph(db, "R", 12, 60, true, 9);
  for (double tau : {1.0, 2.0, 16.0})
    RunFamily("mmap_tri_bfb", TriangleView("bfb"), db, tau);
}

TEST(MmapLoadTest, TriangleFullEnumeration) {
  Database db;
  MakeRandomGraph(db, "R", 10, 45, true, 13);
  RunFamily("mmap_tri_fff", TriangleView("fff"), db, 4.0);
}

TEST(MmapLoadTest, StarJoin) {
  Database db;
  for (int i = 1; i <= 3; ++i)
    MakeRandomGraph(db, "R" + std::to_string(i), 10, 40, false, 70 + i);
  RunFamily("mmap_star3", StarView(3), db, 4.0);
}

TEST(MmapLoadTest, PathFullEnumeration) {
  Database db;
  MakePathRelations(db, "R", 3, 8, 40, 21);
  RunFamily("mmap_path_ffff", PathView(3, "ffff"), db, 4.0);
}

TEST(MmapLoadTest, PathBoundPrefix) {
  Database db;
  MakePathRelations(db, "R", 3, 9, 45, 33);
  RunFamily("mmap_path_bfff", PathView(3, "bfff"), db, 2.0);
}

TEST(MmapLoadTest, BooleanView) {
  Database db;
  testing::AddRelation(db, "R", 2, {{1, 2}, {3, 4}});
  auto view = ParseAdornedView("Q^bb(x,y) = R(x,y)");
  ASSERT_TRUE(view.ok());
  RunFamily("mmap_boolean", view.value(), db, 1.0);
  CompressedRepOptions copt;
  auto rep = CompressedRep::Build(view.value(), db, copt);
  ASSERT_TRUE(rep.ok());
  const std::string path = TempPath("mmap_boolean_probe.cqcrep");
  ASSERT_TRUE(SaveCompressedRep(*rep.value(), path).ok());
  auto mapped = MmapCompressedRep(view.value(), db, path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  EXPECT_TRUE(mapped.value()->AnswerExists({1, 2}));
  EXPECT_FALSE(mapped.value()->AnswerExists({1, 4}));
}

TEST(MmapLoadTest, ConcurrentProbesOnFreshMapping) {
  // The mapped dictionary builds its probe slots lazily on the first
  // FindValuation (std::call_once): hammer a fresh mapping from several
  // threads at once and require every stream to be correct.
  Database db;
  MakeRandomGraph(db, "R", 12, 60, true, 9);
  AdornedView view = TriangleView("bfb");
  CompressedRepOptions copt;
  copt.tau = 2.0;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  const std::string path = TempPath("mmap_concurrent.cqcrep");
  ASSERT_TRUE(SaveCompressedRep(*rep.value(), path).ok());
  auto mapped = MmapCompressedRep(view, db, path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();

  const std::vector<BoundValuation> vbs = InterestingBoundValuations(view, db);
  std::vector<std::vector<std::vector<Tuple>>> got(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (const BoundValuation& vb : vbs)
        got[t].push_back(CollectAll(*mapped.value()->Answer(vb)));
    });
  }
  for (auto& th : threads) th.join();
  for (size_t i = 0; i < vbs.size(); ++i) {
    const std::vector<Tuple> expect = OracleAnswer(view, db, vbs[i]);
    for (int t = 0; t < 4; ++t) EXPECT_EQ(got[t][i], expect);
  }
}

TEST(MmapLoadTest, ResidentBytesAccounting) {
  Database db;
  MakeRandomGraph(db, "R", 12, 60, true, 9);
  AdornedView view = TriangleView("bfb");
  CompressedRepOptions copt;
  copt.tau = 2.0;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  // Built and heap-loaded reps: resident == logical total.
  EXPECT_EQ(rep.value()->ResidentBytes(), rep.value()->stats().TotalBytes());
  const std::string path = TempPath("mmap_resident.cqcrep");
  ASSERT_TRUE(SaveCompressedRep(*rep.value(), path).ok());
  auto mapped = MmapCompressedRep(view, db, path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  // Mapped reps: the heap share is strictly below the logical total, and
  // the mapped share is bounded by the file's resident pages.
  const auto& stats = mapped.value()->stats();
  EXPECT_LE(stats.mapped_bytes, stats.TotalBytes());
  EXPECT_LE(mapped.value()->ResidentBytes(),
            stats.TotalBytes() + mapped.value()->backing()->size());
}

TEST(RepFileTest, OpenErrorsAndEmptyFiles) {
  EXPECT_FALSE(RepFile::Open(TempPath("repfile_missing.bin")).ok());
  const std::string empty = TempPath("repfile_empty.bin");
  std::ofstream(empty, std::ios::binary).flush();
  auto opened = RepFile::Open(empty);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  EXPECT_EQ(opened.value()->size(), 0u);
  EXPECT_EQ(opened.value()->ResidentBytes(), 0u);
}

TEST(RepFileTest, MapsBytesFaithfully) {
  const std::string path = TempPath("repfile_bytes.bin");
  std::string payload;
  for (int i = 0; i < 10000; ++i) payload.push_back((char)(i * 131 % 251));
  std::ofstream(path, std::ios::binary) << payload;
  auto opened = RepFile::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  ASSERT_EQ(opened.value()->size(), payload.size());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(opened.value()->data()),
                        opened.value()->size()),
            payload);
  // Touching every byte makes the mapping resident, never beyond the file.
  EXPECT_LE(opened.value()->ResidentBytes(),
            opened.value()->size() + 4096);
}

}  // namespace
}  // namespace cqc

// Wire-protocol robustness: every way a byte stream can be malformed —
// truncated frames, oversized length prefixes, bit-flipped headers,
// mid-frame disconnects, slow-loris partial writes — must produce a
// Status naming the exact stream byte offset, and the server must answer
// or close cleanly: never crash, never hang, never leak a session.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "tests/test_util.h"

namespace cqc {
namespace serve {
namespace {

using ::cqc::testing::AddRelation;

WireRequest PingRequest(uint64_t id) {
  WireRequest req;
  req.request_id = id;
  req.view = "Q^bf(x,y) = R(x,y)";
  req.body = "";
  req.deadline_ms = 10'000;
  return req;
}

// ---------------------------------------------------------------------------
// FrameReader: incremental assembly over arbitrary chunkings.
// ---------------------------------------------------------------------------

TEST(FrameReader, ByteAtATimeAssembly) {
  const std::string frame = EncodeRequestFrame(PingRequest(7));
  FrameReader reader;
  std::string_view payload;
  uint64_t offset = 0;
  for (size_t i = 0; i < frame.size(); ++i) {
    // Before the last byte arrives the reader must keep asking for more.
    ASSERT_EQ(reader.Poll(&payload, &offset), FrameReader::Next::kNeedMore)
        << "after " << i << " byte(s)";
    reader.Feed(frame.data() + i, 1);
  }
  ASSERT_EQ(reader.Poll(&payload, &offset), FrameReader::Next::kFrame);
  EXPECT_EQ(offset, 4u);  // payload starts after the length prefix
  WireRequest decoded;
  ASSERT_TRUE(DecodeRequestPayload(payload, offset, &decoded).ok());
  EXPECT_EQ(decoded.request_id, 7u);
  EXPECT_EQ(reader.Poll(&payload, &offset), FrameReader::Next::kNeedMore);
}

TEST(FrameReader, TruncationAtEveryPrefixIsJustNeedMore) {
  // No prefix of a valid frame may crash or be misread as an error: a
  // partial frame is always "wait for more bytes".
  const std::string frame = EncodeRequestFrame(PingRequest(1));
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    FrameReader reader;
    reader.Feed(frame.data(), cut);
    std::string_view payload;
    uint64_t offset = 0;
    EXPECT_EQ(reader.Poll(&payload, &offset), FrameReader::Next::kNeedMore)
        << "cut at " << cut;
    EXPECT_EQ(reader.mid_frame(), cut > 0) << "cut at " << cut;
  }
}

TEST(FrameReader, MultipleFramesInOneFeed) {
  std::string stream;
  for (uint64_t id = 1; id <= 3; ++id)
    stream += EncodeRequestFrame(PingRequest(id));
  FrameReader reader;
  reader.Feed(stream.data(), stream.size());
  std::string_view payload;
  uint64_t offset = 0;
  for (uint64_t id = 1; id <= 3; ++id) {
    ASSERT_EQ(reader.Poll(&payload, &offset), FrameReader::Next::kFrame);
    WireRequest decoded;
    ASSERT_TRUE(DecodeRequestPayload(payload, offset, &decoded).ok());
    EXPECT_EQ(decoded.request_id, id);
  }
  EXPECT_EQ(reader.Poll(&payload, &offset), FrameReader::Next::kNeedMore);
  EXPECT_EQ(reader.consumed(), stream.size());
}

TEST(FrameReader, OversizedLengthPrefixFailsAtItsOffset) {
  // A huge length prefix must be an error at the prefix, not a 4GB
  // allocation waiting for bytes that never come.
  FrameReader reader(/*max_payload=*/1024);
  std::string prefix;
  AppendU32(&prefix, 4096);
  reader.Feed(prefix.data(), prefix.size());
  std::string_view payload;
  uint64_t offset = 0;
  ASSERT_EQ(reader.Poll(&payload, &offset), FrameReader::Next::kError);
  EXPECT_EQ(reader.error_offset(), 0u);
  EXPECT_NE(reader.error().message().find("payload cap"), std::string::npos);
  // Errors are sticky: feeding more does not resurrect the stream.
  reader.Feed("abcd", 4);
  EXPECT_EQ(reader.Poll(&payload, &offset), FrameReader::Next::kError);
}

TEST(FrameReader, UndersizedLengthPrefixFailsAtItsOffset) {
  // After one valid frame, so the error offset is mid-stream, not zero.
  const std::string good = EncodeRequestFrame(PingRequest(1));
  FrameReader reader;
  reader.Feed(good.data(), good.size());
  std::string tiny;
  AppendU32(&tiny, 1);  // below the magic+type minimum
  tiny.push_back('x');
  reader.Feed(tiny.data(), tiny.size());
  std::string_view payload;
  uint64_t offset = 0;
  ASSERT_EQ(reader.Poll(&payload, &offset), FrameReader::Next::kFrame);
  ASSERT_EQ(reader.Poll(&payload, &offset), FrameReader::Next::kError);
  EXPECT_EQ(reader.error_offset(), good.size());
}

TEST(FrameReader, MidStreamEofNamesTheOffset) {
  const std::string frame = EncodeRequestFrame(PingRequest(1));
  FrameReader reader;
  reader.Feed(frame.data(), frame.size());
  reader.Feed(frame.data(), 5);  // half a header of the next frame
  std::string_view payload;
  uint64_t offset = 0;
  ASSERT_EQ(reader.Poll(&payload, &offset), FrameReader::Next::kFrame);
  ASSERT_TRUE(reader.mid_frame());
  const Status eof = reader.MidStreamEof();
  EXPECT_FALSE(eof.ok());
  EXPECT_NE(eof.message().find(std::to_string(frame.size())),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Payload decoding: the bit-flip and length-lie corpus.
// ---------------------------------------------------------------------------

std::string_view PayloadOf(const std::string& frame) {
  return std::string_view(frame).substr(4);
}

TEST(DecodeRequest, BitFlippedHeaderBytesAreAddressedErrors) {
  WireRequest req = PingRequest(9);
  req.tenant = "t";
  req.body = "? 1";
  const std::string frame = EncodeRequestFrame(req);
  // Flipping the magic, type, or reserved byte must each fail with the
  // absolute stream offset of the flipped byte.
  const struct {
    size_t payload_byte;
    const char* what;
  } kCases[] = {{0, "magic"}, {1, "type"}, {3, "reserved"}};
  for (const auto& c : kCases) {
    std::string bad(frame);
    bad[4 + c.payload_byte] ^= 0x40;
    WireRequest out;
    uint64_t err_off = 0;
    Status s = DecodeRequestPayload(PayloadOf(bad), 4, &out, &err_off);
    ASSERT_FALSE(s.ok()) << c.what;
    EXPECT_EQ(err_off, 4 + c.payload_byte) << c.what;
    EXPECT_NE(s.message().find("wire offset"), std::string::npos) << c.what;
  }
}

TEST(DecodeRequest, LengthFieldsMustSumToThePayload) {
  WireRequest req = PingRequest(3);
  req.tenant = "acme";
  req.body = "? 1 2";
  std::string frame = EncodeRequestFrame(req);
  // Inflate tenant_len (payload offset 16) past the payload's end.
  frame[4 + 16] = (char)0xFF;
  WireRequest out;
  uint64_t err_off = 0;
  Status s = DecodeRequestPayload(PayloadOf(frame), 4, &out, &err_off);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(err_off, 4u + 16u);
  EXPECT_NE(s.message().find("sum"), std::string::npos);
}

TEST(DecodeRequest, TruncatedFixedHeader) {
  for (size_t len = 0; len < kRequestFixedBytes; ++len) {
    std::string payload(len, '\0');
    if (len > 0) payload[0] = (char)kFrameMagic;
    if (len > 1) payload[1] = (char)kTypeRequest;
    WireRequest out;
    uint64_t err_off = 0;
    Status s = DecodeRequestPayload(payload, 4, &out, &err_off);
    ASSERT_FALSE(s.ok()) << len;
    EXPECT_EQ(err_off, 4 + len) << len;  // points one past the last byte
  }
}

TEST(DecodeResponse, RejectsRowsWithArityZeroAndUnknownCodes) {
  WireResponse resp;
  resp.request_id = 1;
  resp.arity = 1;
  resp.values = {42};
  std::string frame = EncodeResponseFrame(resp);
  {
    std::string bad(frame);
    bad[4 + 3] = 0;  // arity byte: now 1 row with arity 0
    WireResponse out;
    uint64_t err_off = 0;
    Status s = DecodeResponsePayload(PayloadOf(bad), 4, &out, &err_off);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(err_off, 4u + 16u);
  }
  {
    std::string bad(frame);
    bad[4 + 2] = (char)0x7F;  // status code byte
    WireResponse out;
    uint64_t err_off = 0;
    Status s = DecodeResponsePayload(PayloadOf(bad), 4, &out, &err_off);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(err_off, 4u + 2u);
  }
}

TEST(Protocol, ResponseRoundTripsExactly) {
  WireResponse resp;
  resp.code = StatusCode::kDeadlineExceeded;
  resp.arity = 3;
  resp.request_id = 0xDEADBEEFCAFEBABEull;
  resp.error_offset = 1234;
  resp.message = "deadline";
  resp.values = {1, 2, 3, 4, 5, 6};
  const std::string frame = EncodeResponseFrame(resp);
  WireResponse out;
  ASSERT_TRUE(DecodeResponsePayload(PayloadOf(frame), 4, &out).ok());
  EXPECT_EQ(out.code, resp.code);
  EXPECT_EQ(out.arity, resp.arity);
  EXPECT_EQ(out.request_id, resp.request_id);
  EXPECT_EQ(out.error_offset, resp.error_offset);
  EXPECT_EQ(out.message, resp.message);
  EXPECT_EQ(out.values, resp.values);
  EXPECT_EQ(out.num_rows(), 2u);
}

// ---------------------------------------------------------------------------
// Live-socket corpus: the same attacks against a running server.
// ---------------------------------------------------------------------------

class ServerProtocolTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions opts = {}) {
    AddRelation(db_, "R", 2, {{1, 2}, {1, 3}, {2, 3}, {3, 1}});
    opts.port = 0;
    opts.worker_threads = 2;
    server_ = std::make_unique<CqcServer>(&db_, opts);
    ASSERT_TRUE(server_->Start().ok());
  }

  /// Asserts the no-leak invariant: every session opened was closed and
  /// nothing but the listener + wake pipe is left open.
  void ExpectNoLeaks() {
    server_->Stop();
    const ServerStats st = server_->stats();
    EXPECT_EQ(st.active_sessions, 0u);
    EXPECT_EQ(st.open_fds, 0u);
    EXPECT_EQ(st.sessions_opened, st.sessions_closed);
  }

  Database db_;
  std::unique_ptr<CqcServer> server_;
};

TEST_F(ServerProtocolTest, SlowLorisByteAtATimeStillGetsAnswered) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  WireRequest req = PingRequest(42);
  req.body = "? 1";
  const std::string frame = EncodeRequestFrame(req);
  // One byte per send: the reader must assemble across arbitrarily many
  // reads, and the partial frame must not be swept while bytes still flow.
  for (char b : frame)
    ASSERT_TRUE(client.SendRaw(std::string_view(&b, 1)).ok());
  WireResponse resp;
  ASSERT_TRUE(client.ReadResponse(&resp).ok());
  EXPECT_EQ(resp.code, StatusCode::kOk);
  EXPECT_EQ(resp.request_id, 42u);
  EXPECT_EQ(resp.arity, 1u);
  EXPECT_EQ(resp.num_rows(), 2u);  // R(1,2), R(1,3)
  client.Close();
  ExpectNoLeaks();
}

TEST_F(ServerProtocolTest, MidFrameDisconnectIsCountedAndClosed) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  const std::string frame = EncodeRequestFrame(PingRequest(1));
  ASSERT_TRUE(client.SendRaw(std::string_view(frame).substr(0, 9)).ok());
  client.ShutdownWrite();
  // The server sees EOF mid-frame: a protocol error and a clean close.
  WireResponse resp;
  EXPECT_FALSE(client.ReadResponse(&resp).ok());  // no answer, just EOF
  client.Close();
  ExpectNoLeaks();
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(ServerProtocolTest, OversizedPrefixAnsweredWithOffsetThenClosed) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  // One good frame, then a length prefix past the cap: the good frame is
  // answered, the bad prefix gets an error at ITS stream offset, and the
  // connection dies — there is no resync after a framing fault.
  const std::string good = EncodeRequestFrame(PingRequest(1));
  std::string bad;
  AppendU32(&bad, kMaxPayloadBytes + 1);
  ASSERT_TRUE(client.SendRaw(good + bad).ok());
  // The framing error is answered from the loop thread while the good
  // request runs on a worker, so the two responses race — but BOTH must
  // arrive before the close.
  bool saw_ok = false, saw_error = false;
  for (int i = 0; i < 2; ++i) {
    WireResponse resp;
    ASSERT_TRUE(client.ReadResponse(&resp).ok());
    if (resp.code == StatusCode::kOk) {
      EXPECT_EQ(resp.request_id, 1u);
      saw_ok = true;
    } else {
      EXPECT_EQ(resp.code, StatusCode::kError);
      EXPECT_EQ(resp.error_offset, good.size());
      EXPECT_NE(resp.message.find("payload cap"), std::string::npos);
      saw_error = true;
    }
  }
  EXPECT_TRUE(saw_ok);
  EXPECT_TRUE(saw_error);
  WireResponse resp;
  EXPECT_FALSE(client.ReadResponse(&resp).ok());  // EOF: server closed
  client.Close();
  ExpectNoLeaks();
}

TEST_F(ServerProtocolTest, BitFlippedMagicOverTheWire) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  std::string frame = EncodeRequestFrame(PingRequest(5));
  frame[4] ^= 0x01;  // corrupt the magic byte
  ASSERT_TRUE(client.SendRaw(frame).ok());
  WireResponse resp;
  ASSERT_TRUE(client.ReadResponse(&resp).ok());
  EXPECT_EQ(resp.code, StatusCode::kError);
  EXPECT_EQ(resp.error_offset, 4u);
  EXPECT_NE(resp.message.find("magic"), std::string::npos);
  client.Close();
  ExpectNoLeaks();
}

TEST_F(ServerProtocolTest, ScriptParseErrorIsWireAddressedAndRecoverable) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  WireRequest req = PingRequest(1);
  req.tenant = "acme";
  req.body = "? 1 junk";
  WireResponse resp;
  ASSERT_TRUE(client.Call(req, &resp).ok());
  EXPECT_EQ(resp.code, StatusCode::kError);
  // The offset names the first byte of "junk" in the STREAM: length
  // prefix + fixed header + tenant + view + the token's line offset.
  const uint32_t expect = (uint32_t)(4 + kRequestFixedBytes +
                                     req.tenant.size() + req.view.size() +
                                     req.body.find("junk"));
  EXPECT_EQ(resp.error_offset, expect);
  // A request-level error is NOT a framing error: the session survives.
  req.request_id = 2;
  req.body = "? 1";
  ASSERT_TRUE(client.Call(req, &resp).ok());
  EXPECT_EQ(resp.code, StatusCode::kOk);
  client.Close();
  ExpectNoLeaks();
}

TEST_F(ServerProtocolTest, StalePartialFrameIsSweptOut) {
  ServerOptions opts;
  opts.partial_frame_timeout = std::chrono::milliseconds(200);
  StartServer(opts);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  const std::string frame = EncodeRequestFrame(PingRequest(1));
  ASSERT_TRUE(client.SendRaw(std::string_view(frame).substr(0, 6)).ok());
  // A half-sent frame left hanging past the timeout is a dead or hostile
  // peer; the sweep must reclaim the session without a request ever
  // completing.
  WireResponse resp;
  EXPECT_FALSE(client.ReadResponse(&resp).ok());  // server closes on us
  client.Close();
  ExpectNoLeaks();
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(ServerProtocolTest, SessionCapRefusesTheOverflowConnection) {
  ServerOptions opts;
  opts.max_sessions = 2;
  StartServer(opts);
  Client a, b;
  ASSERT_TRUE(a.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", server_->port()).ok());
  WireResponse resp;
  // Prove both sessions are live before the cap kicks in.
  ASSERT_TRUE(a.Call(PingRequest(1), &resp).ok());
  ASSERT_TRUE(b.Call(PingRequest(2), &resp).ok());
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  Status got = c.ReadResponse(&resp);
  // The refusal frame is best-effort; the close is guaranteed.
  if (got.ok()) {
    EXPECT_EQ(resp.code, StatusCode::kUnavailable);
    EXPECT_NE(resp.message.find("capacity"), std::string::npos);
  }
  EXPECT_GE(server_->stats().sessions_refused, 1u);
  a.Close();
  b.Close();
  c.Close();
  ExpectNoLeaks();
}

TEST_F(ServerProtocolTest, PipelinedRequestsAllAnswerInOrder) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  // Many frames in one write; responses must come back one per request.
  std::string burst;
  constexpr uint64_t kN = 32;
  for (uint64_t id = 1; id <= kN; ++id) {
    WireRequest req = PingRequest(id);
    req.body = "? 1";
    burst += EncodeRequestFrame(req);
  }
  ASSERT_TRUE(client.SendRaw(burst).ok());
  uint64_t seen = 0;
  for (uint64_t i = 0; i < kN; ++i) {
    WireResponse resp;
    ASSERT_TRUE(client.ReadResponse(&resp).ok());
    EXPECT_EQ(resp.code, StatusCode::kOk);
    seen |= 1ull << (resp.request_id - 1);
  }
  EXPECT_EQ(seen, (1ull << kN) - 1);  // every id answered exactly once
  client.Close();
  ExpectNoLeaks();
}

}  // namespace
}  // namespace serve
}  // namespace cqc

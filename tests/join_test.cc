#include <gtest/gtest.h>

#include "join/bound_atom.h"
#include "join/generic_join.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace cqc {
namespace {

using testing::AddRelation;
using testing::IsStrictlySortedLex;
using testing::NaiveEvaluate;

// Runs a generic join over all (free) variables of a natural-join view with
// no bound variables and compares against the naive oracle.
std::vector<Tuple> RunFullJoin(const ConjunctiveQuery& cq,
                               const Database& db) {
  std::vector<VarId> order;
  for (VarId v = 0; v < cq.num_vars(); ++v) order.push_back(v);
  std::vector<VarId> none;
  std::vector<BoundAtom> atoms;
  for (const Atom& atom : cq.atoms())
    atoms.emplace_back(atom, *db.Find(atom.relation), none, order);
  std::vector<JoinAtomInput> inputs;
  for (const BoundAtom& atom : atoms) {
    JoinAtomInput in;
    in.index = &atom.bf_index();
    in.start = atom.bf_index().Root();
    in.start_level = 0;
    for (int i = 0; i < atom.num_free(); ++i)
      in.levels.emplace_back(atom.free_positions()[i], i);
    inputs.push_back(std::move(in));
  }
  JoinIterator join(
      std::move(inputs), cq.num_vars(),
      std::vector<LevelConstraint>(cq.num_vars(), LevelConstraint::Any()));
  Tuple t;
  std::vector<Tuple> out;
  while (join.Next(&t)) out.push_back(t);
  return out;
}

// Oracle with head = all variables in VarId order.
std::vector<Tuple> OracleAllVars(const ConjunctiveQuery& cq,
                                 const Database& db) {
  ConjunctiveQuery copy = cq;  // re-head with every variable
  auto text = cq.ToString();
  // Build a fresh CQ with identical body but full identity head.
  ConjunctiveQuery full;
  for (VarId v = 0; v < cq.num_vars(); ++v)
    full.GetOrAddVar(cq.var_name(v));
  for (VarId v = 0; v < cq.num_vars(); ++v) full.AddHeadVar(v);
  for (const Atom& a : cq.atoms()) full.AddAtom(a);
  return NaiveEvaluate(full, db);
}

TEST(BoundAtomTest, SplitsBoundAndFree) {
  auto q = ParseConjunctiveQuery("Q(x,y,z) = R(y,x,z)");
  ASSERT_TRUE(q.ok());
  Database db;
  AddRelation(db, "R", 3, {{1, 2, 3}});
  VarId x = q.value().FindVar("x"), y = q.value().FindVar("y"),
        z = q.value().FindVar("z");
  BoundAtom atom(q.value().atoms()[0], *db.Find("R"), {x, z}, {y});
  EXPECT_EQ(atom.num_bound(), 2);
  EXPECT_EQ(atom.num_free(), 1);
  // Bound positions ascending: x at view pos 0 (col 1), z at pos 1 (col 2).
  EXPECT_EQ(atom.bound_positions(), (std::vector<int>{0, 1}));
  EXPECT_EQ(atom.free_positions(), (std::vector<int>{0}));
  // Row (y=1, x=2, z=3): bound (x=2, z=3), free y=1.
  EXPECT_EQ(atom.CountBound(Tuple{2, 3}), 1u);
  EXPECT_EQ(atom.CountBound(Tuple{1, 3}), 0u);
  EXPECT_TRUE(atom.ContainsValuation(Tuple{2, 3}, Tuple{1}));
  EXPECT_FALSE(atom.ContainsValuation(Tuple{2, 3}, Tuple{9}));
}

TEST(BoundAtomTest, CountBoxCanonical) {
  auto q = ParseConjunctiveQuery("Q(a,b) = R(a,b)");
  ASSERT_TRUE(q.ok());
  Database db;
  AddRelation(db, "R", 2,
              {{1, 10}, {1, 20}, {2, 10}, {2, 30}, {3, 10}});
  VarId a = q.value().FindVar("a"), b = q.value().FindVar("b");
  std::vector<VarId> none;
  BoundAtom atom(q.value().atoms()[0], *db.Find("R"), none, {a, b});
  // Box <1, *>: 2 rows.
  FBox box1{{FBoxDim::Unit(1), FBoxDim::Any()}};
  EXPECT_EQ(atom.CountBox(box1), 2u);
  // Box <[2,3], *>: 3 rows.
  FBox box2{{FBoxDim::Range(2, 3), FBoxDim::Any()}};
  EXPECT_EQ(atom.CountBox(box2), 3u);
  // Box <2, [10,29]>: 1 row.
  FBox box3{{FBoxDim::Unit(2), FBoxDim::Range(10, 29)}};
  EXPECT_EQ(atom.CountBox(box3), 1u);
  // Empty range.
  FBox box4{{FBoxDim::Range(5, 4), FBoxDim::Any()}};
  EXPECT_EQ(atom.CountBox(box4), 0u);
}

TEST(BoundAtomTest, CountBoundBoxMixesBoundAndBox) {
  // R(w, x, y) with w bound; count under (w=1) and y-range.
  auto q = ParseConjunctiveQuery("Q(w,x,y) = R(w,x,y)");
  ASSERT_TRUE(q.ok());
  Database db;
  AddRelation(db, "R", 3,
              {{1, 1, 1}, {1, 1, 2}, {1, 2, 1}, {2, 1, 1}, {3, 1, 1}});
  VarId w = q.value().FindVar("w"), x = q.value().FindVar("x"),
        y = q.value().FindVar("y");
  BoundAtom atom(q.value().atoms()[0], *db.Find("R"), {w}, {x, y});
  FBox all{{FBoxDim::Any(), FBoxDim::Any()}};
  EXPECT_EQ(atom.CountBoundBox(Tuple{1}, all), 3u);
  FBox x1{{FBoxDim::Unit(1), FBoxDim::Any()}};
  EXPECT_EQ(atom.CountBoundBox(Tuple{1}, x1), 2u);
  FBox x1y2{{FBoxDim::Unit(1), FBoxDim::Range(2, 5)}};
  EXPECT_EQ(atom.CountBoundBox(Tuple{1}, x1y2), 1u);
  EXPECT_EQ(atom.CountBoundBox(Tuple{9}, all), 0u);
}

TEST(GenericJoinTest, TwoPathMatchesOracle) {
  auto q = ParseConjunctiveQuery("Q(x,y,z) = R(x,y), S(y,z)");
  ASSERT_TRUE(q.ok());
  Database db;
  AddRelation(db, "R", 2, {{1, 2}, {1, 3}, {4, 2}});
  AddRelation(db, "S", 2, {{2, 7}, {2, 8}, {3, 9}, {5, 1}});
  auto got = RunFullJoin(q.value(), db);
  EXPECT_TRUE(IsStrictlySortedLex(got));
  EXPECT_EQ(got, OracleAllVars(q.value(), db));
  EXPECT_EQ(got.size(), 5u);
}

TEST(GenericJoinTest, TriangleMatchesOracle) {
  auto q = ParseConjunctiveQuery("Q(x,y,z) = R(x,y), S(y,z), T(z,x)");
  ASSERT_TRUE(q.ok());
  Database db;
  Rng rng(77);
  std::vector<Tuple> edges;
  for (int i = 0; i < 120; ++i)
    edges.push_back({rng.UniformRange(1, 12), rng.UniformRange(1, 12)});
  AddRelation(db, "R", 2, edges);
  AddRelation(db, "S", 2, edges);
  AddRelation(db, "T", 2, edges);
  auto got = RunFullJoin(q.value(), db);
  EXPECT_TRUE(IsStrictlySortedLex(got));
  EXPECT_EQ(got, OracleAllVars(q.value(), db));
}

TEST(GenericJoinTest, SelfJoinSameRelation) {
  auto q = ParseConjunctiveQuery("Q(x,y,z) = R(x,y), R(y,z)");
  ASSERT_TRUE(q.ok());
  Database db;
  AddRelation(db, "R", 2, {{1, 2}, {2, 3}, {3, 1}, {2, 1}});
  auto got = RunFullJoin(q.value(), db);
  EXPECT_EQ(got, OracleAllVars(q.value(), db));
}

TEST(GenericJoinTest, EmptyRelationKillsJoin) {
  auto q = ParseConjunctiveQuery("Q(x,y,z) = R(x,y), S(y,z)");
  ASSERT_TRUE(q.ok());
  Database db;
  AddRelation(db, "R", 2, {{1, 2}});
  AddRelation(db, "S", 2, {});
  EXPECT_TRUE(RunFullJoin(q.value(), db).empty());
}

TEST(GenericJoinTest, RandomInstancesPropertySweep) {
  // Property test: on random ternary-join instances, the streaming join
  // equals the oracle and is lexicographically sorted.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto q = ParseConjunctiveQuery("Q(x,y,z,w) = R(x,y), S(y,z), T(z,w)");
    ASSERT_TRUE(q.ok());
    Database db;
    Rng rng(seed);
    auto rand_rel = [&](const std::string& name) {
      std::vector<Tuple> rows;
      int n = 20 + (int)rng.Uniform(40);
      for (int i = 0; i < n; ++i)
        rows.push_back({rng.UniformRange(1, 8), rng.UniformRange(1, 8)});
      AddRelation(db, name, 2, rows);
    };
    rand_rel("R");
    rand_rel("S");
    rand_rel("T");
    auto got = RunFullJoin(q.value(), db);
    EXPECT_TRUE(IsStrictlySortedLex(got)) << "seed " << seed;
    EXPECT_EQ(got, OracleAllVars(q.value(), db)) << "seed " << seed;
  }
}

TEST(GenericJoinTest, UnitAndRangeConstraints) {
  auto q = ParseConjunctiveQuery("Q(x,y) = R(x,y)");
  ASSERT_TRUE(q.ok());
  Database db;
  AddRelation(db, "R", 2, {{1, 5}, {1, 6}, {2, 5}, {3, 7}});
  std::vector<VarId> none;
  BoundAtom atom(q.value().atoms()[0], *db.Find("R"), none,
                 {q.value().FindVar("x"), q.value().FindVar("y")});
  JoinAtomInput in;
  in.index = &atom.bf_index();
  in.start = atom.bf_index().Root();
  in.start_level = 0;
  in.levels = {{0, 0}, {1, 1}};
  {
    JoinIterator join({in}, 2,
                      {LevelConstraint::Unit(1), LevelConstraint::Any()});
    Tuple t;
    std::vector<Tuple> got;
    while (join.Next(&t)) got.push_back(t);
    EXPECT_EQ(got, (std::vector<Tuple>{{1, 5}, {1, 6}}));
  }
  {
    LevelConstraint range{FBoxDim::kRange, 2, 3};
    JoinIterator join({in}, 2, {range, LevelConstraint::Any()});
    Tuple t;
    std::vector<Tuple> got;
    while (join.Next(&t)) got.push_back(t);
    EXPECT_EQ(got, (std::vector<Tuple>{{2, 5}, {3, 7}}));
  }
}

TEST(GenericJoinTest, ZeroLevelExistenceCheck) {
  auto q = ParseConjunctiveQuery("Q(x) = R(x)");
  ASSERT_TRUE(q.ok());
  Database db;
  AddRelation(db, "R", 1, {{1}});
  std::vector<VarId> none;
  BoundAtom atom(q.value().atoms()[0], *db.Find("R"),
                 {q.value().FindVar("x")}, none);
  JoinAtomInput in;
  in.index = &atom.bf_index();
  in.start = atom.SeekBound(Tuple{1});
  in.start_level = 1;
  JoinIterator join({in}, 0, {});
  Tuple t;
  EXPECT_TRUE(join.Next(&t));
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(join.Next(&t));

  JoinAtomInput miss = in;
  miss.start = atom.SeekBound(Tuple{9});
  JoinIterator join2({miss}, 0, {});
  EXPECT_FALSE(join2.Next(&t));
}

}  // namespace
}  // namespace cqc

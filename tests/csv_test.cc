#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "relational/csv.h"
#include "tests/test_util.h"

namespace cqc {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(CsvTest, RoundTrip) {
  Database db;
  cqc::testing::AddRelation(db, "R", 3, {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveRelationCsv(*db.Find("R"), path).ok());
  Database db2;
  auto loaded = LoadRelationCsv(db2, "R", 3, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value()->size(), 3u);
  EXPECT_TRUE(loaded.value()->Contains(Tuple{4, 5, 6}));
}

TEST(CsvTest, CommentsAndBlanksSkipped) {
  const std::string path = TempPath("comments.csv");
  WriteFile(path, "# header\n1,2\n\n  \n3,4\n# trailing\n");
  Database db;
  auto loaded = LoadRelationCsv(db, "R", 2, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->size(), 2u);
}

TEST(CsvTest, CustomDelimiterAndWhitespace) {
  const std::string path = TempPath("tsv.tsv");
  WriteFile(path, "1\t 20\n 3 \t40\n");
  Database db;
  auto loaded = LoadRelationCsv(db, "R", 2, path, '\t');
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_TRUE(loaded.value()->Contains(Tuple{1, 20}));
  EXPECT_TRUE(loaded.value()->Contains(Tuple{3, 40}));
}

TEST(CsvTest, Errors) {
  Database db;
  EXPECT_FALSE(LoadRelationCsv(db, "R", 2, "/nonexistent/file.csv").ok());
  const std::string bad_cols = TempPath("badcols.csv");
  WriteFile(bad_cols, "1,2,3\n");
  Database db2;
  EXPECT_FALSE(LoadRelationCsv(db2, "R", 2, bad_cols).ok());
  const std::string bad_field = TempPath("badfield.csv");
  WriteFile(bad_field, "1,abc\n");
  Database db3;
  EXPECT_FALSE(LoadRelationCsv(db3, "R", 2, bad_field).ok());
}

TEST(CsvTest, DedupOnLoad) {
  const std::string path = TempPath("dups.csv");
  WriteFile(path, "1,2\n1,2\n1,2\n3,4\n");
  Database db;
  auto loaded = LoadRelationCsv(db, "R", 2, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->size(), 2u);
}

}  // namespace
}  // namespace cqc

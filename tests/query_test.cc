#include <gtest/gtest.h>

#include "query/adorned_view.h"
#include "query/cq.h"
#include "query/hypergraph.h"
#include "query/normalize.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace cqc {
namespace {

TEST(ParserTest, ParsesTriangle) {
  auto q = ParseConjunctiveQuery("Q(x,y,z) = R(x,y), S(y,z), T(z,x)");
  ASSERT_TRUE(q.ok()) << q.status().message();
  const ConjunctiveQuery& cq = q.value();
  EXPECT_EQ(cq.num_vars(), 3);
  EXPECT_EQ(cq.atoms().size(), 3u);
  EXPECT_TRUE(cq.IsFull());
  EXPECT_TRUE(cq.IsNaturalJoin());
}

TEST(ParserTest, ParsesDatalogArrow) {
  auto q = ParseConjunctiveQuery("Q(x) :- R(x,y), S(y)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q.value().IsFull());  // y not in head
}

TEST(ParserTest, ParsesConstantsAndRepeats) {
  auto q = ParseConjunctiveQuery("Q(x,z) = R(x,y,7), S(y,y,z)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q.value().IsNaturalJoin());
  EXPECT_FALSE(q.value().atoms()[0].IsNaturalAtom());
  EXPECT_EQ(q.value().atoms()[0].terms[2].constant, 7u);
}

TEST(ParserTest, AdornedView) {
  auto v = ParseAdornedView("Q^bfb(x,y,z) = R(x,y), R(y,z), R(z,x)");
  ASSERT_TRUE(v.ok()) << v.status().message();
  EXPECT_EQ(v.value().num_bound(), 2);
  EXPECT_EQ(v.value().num_free(), 1);
  EXPECT_EQ(v.value().bound_vars().size(), 2u);
  // x and z bound; y free.
  EXPECT_EQ(v.value().cq().var_name(v.value().free_vars()[0]), "y");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseConjunctiveQuery("Q(x = R(x)").ok());
  EXPECT_FALSE(ParseConjunctiveQuery("Q(x) R(x)").ok());
  EXPECT_FALSE(ParseConjunctiveQuery("Q(x) = R(x) garbage").ok());
  EXPECT_FALSE(ParseAdornedView("Q(x) = R(x)").ok());       // no adornment
  EXPECT_FALSE(ParseAdornedView("Q^bb(x) = R(x)").ok());    // length
  EXPECT_FALSE(ParseAdornedView("Q^q(x) = R(x)").ok());     // bad char
  EXPECT_FALSE(ParseConjunctiveQuery("Q(x) = R(y)").ok());  // x not in body
  EXPECT_FALSE(ParseConjunctiveQuery("Q(7) = R(x)").ok());  // const in head
}

TEST(AdornedViewTest, Classification) {
  auto boolean = ParseAdornedView("Q^bbb(x,y,z) = R(x,y,z)");
  ASSERT_TRUE(boolean.ok());
  EXPECT_TRUE(boolean.value().IsBooleanAdorned());
  auto full = ParseAdornedView("Q^fff(x,y,z) = R(x,y,z)");
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full.value().IsFullEnumeration());
  EXPECT_TRUE(full.value().IsNonParametric());
}

TEST(HypergraphTest, EdgesAndIntersections) {
  auto q = ParseConjunctiveQuery("Q(x,y,z) = R(x,y), S(y,z), T(z,x)");
  ASSERT_TRUE(q.ok());
  Hypergraph h(q.value());
  EXPECT_EQ(h.num_edges(), 3);
  EXPECT_EQ(VarSetSize(h.vertices()), 3);
  VarId y = q.value().FindVar("y");
  auto touching = h.EdgesIntersecting(VarBit(y));
  EXPECT_EQ(touching.size(), 2u);  // R and S
}

TEST(HypergraphTest, Connectivity) {
  // Disconnected: R(x,y), S(z,w).
  auto q = ParseConjunctiveQuery("Q(x,y,z,w) = R(x,y), S(z,w)");
  ASSERT_TRUE(q.ok());
  Hypergraph h(q.value());
  EXPECT_TRUE(h.IsConnected(0));
  VarId x = q.value().FindVar("x"), y = q.value().FindVar("y"),
        z = q.value().FindVar("z");
  EXPECT_TRUE(h.IsConnected(VarBit(x) | VarBit(y)));
  EXPECT_FALSE(h.IsConnected(VarBit(x) | VarBit(z)));
  EXPECT_FALSE(h.IsConnected(h.vertices()));
}

TEST(HypergraphTest, Neighbors) {
  auto q = ParseConjunctiveQuery("Q(x,y,z) = R(x,y), S(y,z)");
  ASSERT_TRUE(q.ok());
  Hypergraph h(q.value());
  VarId x = q.value().FindVar("x"), y = q.value().FindVar("y"),
        z = q.value().FindVar("z");
  EXPECT_EQ(h.Neighbors(VarBit(x)), VarBit(y));
  EXPECT_EQ(h.Neighbors(VarBit(y)), VarBit(x) | VarBit(z));
}

TEST(NormalizeTest, Example3Rewrite) {
  // Q^fb(x,z) = R(x,y,7), S(y,y,z): after rewriting, a natural join whose
  // result matches brute force over the original query.
  Database db;
  testing::AddRelation(db, "R", 3,
                       {{1, 2, 7}, {1, 3, 8}, {4, 2, 7}, {5, 9, 7}});
  testing::AddRelation(db, "S", 3,
                       {{2, 2, 100}, {2, 3, 101}, {9, 9, 102}, {3, 3, 103}});
  auto view = ParseAdornedView("Q^fbf(x,y,z) = R(x,y,7), S(y,y,z)");
  ASSERT_TRUE(view.ok()) << view.status().message();
  auto norm = NormalizeView(view.value(), db);
  ASSERT_TRUE(norm.ok()) << norm.status().message();
  EXPECT_TRUE(norm.value().view.cq().IsNaturalJoin());
  // Evaluate both and compare.
  auto expected = testing::NaiveEvaluate(view.value().cq(), db);
  auto got = testing::NaiveEvaluate(norm.value().view.cq(), db,
                                    &norm.value().aux_db);
  EXPECT_EQ(expected, got);
  EXPECT_FALSE(expected.empty());
}

TEST(NormalizeTest, NaturalAtomsUntouched) {
  Database db;
  testing::AddRelation(db, "R", 2, {{1, 2}});
  auto view = ParseAdornedView("Q^bf(x,y) = R(x,y)");
  ASSERT_TRUE(view.ok());
  auto norm = NormalizeView(view.value(), db);
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(norm.value().view.cq().atoms()[0].relation, "R");
  EXPECT_EQ(norm.value().aux_db.TotalTuples(), 0u);
}

TEST(NormalizeTest, RejectsNonFull) {
  Database db;
  testing::AddRelation(db, "R", 2, {{1, 2}});
  auto view = ParseAdornedView("Q^b(x) = R(x,y)");
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(NormalizeView(view.value(), db).ok());
}

TEST(NormalizeTest, UnknownRelation) {
  Database db;
  auto view = ParseAdornedView("Q^bf(x,y) = Missing(x,y)");
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(NormalizeView(view.value(), db).ok());
}

TEST(CqTest, ToStringRoundTrip) {
  auto q = ParseConjunctiveQuery("Q(x,y) = R(x,y), S(y,7)");
  ASSERT_TRUE(q.ok());
  auto q2 = ParseConjunctiveQuery(q.value().ToString());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q.value().ToString(), q2.value().ToString());
}

}  // namespace
}  // namespace cqc

// Differential suite for the SIMD kernel layer (src/simd/): every kernel
// must be BIT-IDENTICAL to its scalar twin at every dispatch level the
// machine supports. Levels differ in instruction choice only — the suite
// sweeps simd::SupportedLevels() over randomized and adversarial inputs
// and compares against independent scalar references computed here (not
// against the kernels' own scalar table, except where noted).
//
// The CQC_FORCE_SCALAR=1 environment override is resolved once at static
// init, so it cannot be toggled from inside a test process; the scalar CI
// job (.github/workflows/ci.yml, job scalar-fallback) runs this whole
// binary — and the full suite — under the override instead.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "core/bitpack.h"
#include "core/updatable_rep.h"
#include "relational/hash_index.h"
#include "relational/relation.h"
#include "simd/kernels.h"
#include "simd/simd_caps.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::OracleAnswer;
using testing::SortedCopy;

// Restores the detected dispatch level after each test so a failing sweep
// cannot leave the rest of the suite pinned to a stale level.
class SimdKernelsTest : public ::testing::Test {
 protected:
  ~SimdKernelsTest() override { simd::SetLevel(simd::Detected()); }
};

TEST_F(SimdKernelsTest, DetectionAndLevelClamping) {
  const std::vector<simd::Level> levels = simd::SupportedLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), simd::Level::kScalar);
  EXPECT_EQ(levels.back(), simd::Detected());
  for (size_t i = 1; i < levels.size(); ++i)
    EXPECT_LT((int)levels[i - 1], (int)levels[i]);

  for (simd::Level l : levels) {
    EXPECT_EQ(simd::SetLevel(l), l);
    EXPECT_EQ(simd::Active(), l);
    EXPECT_NE(simd::LevelName(l), nullptr);
  }
  // A level this machine cannot run clamps to something runnable instead
  // of dispatching into illegal instructions.
#if defined(__aarch64__)
  const simd::Level foreign = simd::Level::kAVX2;
#else
  const simd::Level foreign = simd::Level::kNEON;
#endif
  const simd::Level got = simd::SetLevel(foreign);
  EXPECT_NE(got, foreign);
  EXPECT_EQ(got, simd::Active());
}

// Sorted adversarial columns: long duplicate runs, 1-element runs,
// near-miss tails, extreme values, and random mixtures.
std::vector<std::vector<Value>> AdversarialColumns() {
  std::vector<std::vector<Value>> cols;
  cols.push_back({});                     // empty
  cols.push_back({7});                    // singleton
  cols.push_back(std::vector<Value>(300, 42));  // one giant run
  {
    std::vector<Value> c;  // runs of varied lengths incl. 1
    for (size_t len : {1, 2, 3, 1, 5, 17, 1, 64, 257, 1, 33})
      c.insert(c.end(), len, c.empty() ? 0 : c.back() + 1);
    cols.push_back(std::move(c));
  }
  {
    std::vector<Value> c(500);  // strictly increasing (all runs length 1)
    for (size_t i = 0; i < c.size(); ++i) c[i] = i * 3 + 1;
    cols.push_back(std::move(c));
  }
  {
    std::vector<Value> c;  // near-miss tail: v-1 repeated, then v, then max
    c.insert(c.end(), 130, 999);
    c.push_back(1000);
    c.insert(c.end(), 40, UINT64_MAX - 1);
    c.insert(c.end(), 17, UINT64_MAX);
    cols.push_back(std::move(c));
  }
  Rng rng(123);
  for (size_t n : {9, 31, 100, 1000, 4097}) {
    std::vector<Value> c(n);  // random with duplicates, then sorted
    for (auto& v : c) v = rng.Uniform(n / 2 + 1) * 7;
    std::sort(c.begin(), c.end());
    cols.push_back(std::move(c));
  }
  return cols;
}

TEST_F(SimdKernelsTest, SeekGEMatchesLowerBoundEverywhere) {
  const auto columns = AdversarialColumns();
  Rng rng(7);
  for (simd::Level level : simd::SupportedLevels()) {
    ASSERT_EQ(simd::SetLevel(level), level);
    for (const auto& col : columns) {
      const size_t end = col.size();
      std::vector<Value> probes = {0, 1, UINT64_MAX, UINT64_MAX - 1};
      for (int i = 0; i < 40 && !col.empty(); ++i) {
        const Value v = col[rng.Uniform(end)];
        probes.push_back(v);
        probes.push_back(v == 0 ? 0 : v - 1);
        probes.push_back(v == UINT64_MAX ? v : v + 1);
      }
      std::vector<size_t> begins = {0};
      if (end > 0) begins.insert(begins.end(), {end / 2, end - 1, end});
      for (size_t begin : begins) {
        for (Value v : probes) {
          const size_t want =
              std::lower_bound(col.data() + begin, col.data() + end, v) -
              col.data();
          EXPECT_EQ(simd::SeekGE(col.data(), begin, end, v), want)
              << "level=" << simd::LevelName(level) << " n=" << end
              << " begin=" << begin << " v=" << v;
        }
      }
    }
  }
}

TEST_F(SimdKernelsTest, RunEndMatchesScalarReference) {
  const auto columns = AdversarialColumns();
  for (simd::Level level : simd::SupportedLevels()) {
    ASSERT_EQ(simd::SetLevel(level), level);
    for (const auto& col : columns) {
      const size_t end = col.size();
      // Every position, not just run heads: RunEnd's contract is
      // "first i in (pos, end) with col[i] != col[pos]".
      for (size_t pos = 0; pos < end; ++pos) {
        size_t want = pos + 1;
        while (want < end && col[want] == col[pos]) ++want;
        ASSERT_EQ(simd::RunEnd(col.data(), pos, end), want)
            << "level=" << simd::LevelName(level) << " n=" << end
            << " pos=" << pos;
      }
    }
  }
}

TEST_F(SimdKernelsTest, UnpackRowsMatchesUnpackRowRandomized) {
  Rng rng(20260808);
  const std::vector<uint32_t> width_menu = {0,  1,  3,  7,  8,  13, 21,
                                            31, 32, 33, 47, 63, 64};
  for (int trial = 0; trial < 60; ++trial) {
    const int arity = 1 + (int)rng.Uniform(6);
    const size_t rows = 1 + rng.Uniform(600);
    std::vector<uint32_t> widths(arity);
    for (auto& w : widths) w = width_menu[rng.Uniform(width_menu.size())];
    std::vector<Value> flat(rows * arity);
    for (size_t r = 0; r < rows; ++r)
      for (int c = 0; c < arity; ++c) {
        const uint32_t w = widths[c];
        Value v = 0;
        if (w == 64) {
          v = rng.Bernoulli(0.05) ? UINT64_MAX : rng.Next();
        } else if (w > 0) {
          const Value cap = (Value(1) << w) - 1;
          v = rng.Bernoulli(0.05) ? cap : rng.Next() & cap;
        }
        flat[r * arity + c] = v;
      }
    // Pack() derives widths from the data; force each column's planned
    // width by planting its max value in row 0.
    for (int c = 0; c < arity; ++c)
      if (widths[c] > 0)
        flat[c] = widths[c] == 64 ? UINT64_MAX : (Value(1) << widths[c]) - 1;
      else
        flat[c] = 0;
    const PackedTuplePool pool = PackedTuplePool::Pack(flat, arity, rows);

    std::vector<Value> want(rows * arity);
    for (size_t r = 0; r < rows; ++r) pool.UnpackRow(r, &want[r * arity]);
    ASSERT_EQ(want, flat);  // the per-row path itself round-trips

    for (simd::Level level : simd::SupportedLevels()) {
      ASSERT_EQ(simd::SetLevel(level), level);
      // Random windows plus the boundary shapes: full pool, single row,
      // ragged tail (n not a multiple of the 4-row gather block).
      std::vector<std::pair<size_t, size_t>> windows = {
          {0, rows}, {0, 1}, {rows - 1, 1}};
      const size_t ragged = rows % 4 + 1;  // not a multiple of the block
      if (ragged <= rows) windows.emplace_back(rows - ragged, ragged);
      for (int i = 0; i < 6; ++i) {
        const size_t first = rng.Uniform(rows);
        windows.emplace_back(first, 1 + rng.Uniform(rows - first));
      }
      std::vector<Value> got;
      for (auto [first, n] : windows) {
        got.assign(n * arity, 0xDEADBEEF);
        pool.UnpackRows(first, n, got.data());
        ASSERT_EQ(0, std::memcmp(got.data(), want.data() + first * arity,
                                 n * arity * sizeof(Value)))
            << "level=" << simd::LevelName(level) << " arity=" << arity
            << " rows=" << rows << " window=[" << first << "," << n << ")";
      }
    }
  }
}

TEST_F(SimdKernelsTest, MatchTagsAndMatchEmptyMatchBitwiseReference) {
  Rng rng(99);
  alignas(64) uint8_t fps[simd::kGroupWidth];
  alignas(64) uint32_t rows[simd::kGroupWidth];
  for (int trial = 0; trial < 500; ++trial) {
    for (auto& f : fps) f = (uint8_t)rng.Uniform(4);  // force collisions
    for (auto& r : rows)
      r = rng.Bernoulli(0.3) ? ~0u : (uint32_t)rng.Uniform(100);
    const uint8_t tag = (uint8_t)rng.Uniform(4);
    uint32_t want_tags = 0, want_empty = 0;
    for (size_t i = 0; i < simd::kGroupWidth; ++i) {
      if (fps[i] == tag) want_tags |= 1u << i;
      if (rows[i] == ~0u) want_empty |= 1u << i;
    }
    for (simd::Level level : simd::SupportedLevels()) {
      ASSERT_EQ(simd::SetLevel(level), level);
      ASSERT_EQ(simd::MatchTags(fps, tag), want_tags)
          << "level=" << simd::LevelName(level);
      ASSERT_EQ(simd::MatchEmpty(rows, ~0u), want_empty)
          << "level=" << simd::LevelName(level);
    }
  }
}

TEST_F(SimdKernelsTest, HashContainsBatchMatchesContains) {
  Rng rng(5);
  Relation rel("R", 3);
  for (int i = 0; i < 2000; ++i)
    rel.Insert({rng.Uniform(64), rng.Uniform(64), rng.Uniform(64)});
  rel.Seal();
  const HashIndex& idx = rel.GetHashIndex();

  std::vector<Value> probes;  // ~half planted hits, ~half in-domain misses
  const size_t kProbes = 1000;
  for (size_t i = 0; i < kProbes; ++i) {
    if (rng.Bernoulli(0.5)) {
      const size_t row = rng.Uniform(rel.size());
      for (int c = 0; c < 3; ++c) probes.push_back(rel.At(row, c));
    } else {
      for (int c = 0; c < 3; ++c) probes.push_back(rng.Uniform(64) + 64);
    }
  }
  std::vector<uint8_t> want(kProbes);
  for (size_t i = 0; i < kProbes; ++i)
    want[i] = idx.Contains(TupleSpan(probes.data() + i * 3, 3)) ? 1 : 0;
  ASSERT_NE(std::count(want.begin(), want.end(), 1), 0);
  ASSERT_NE(std::count(want.begin(), want.end(), 0), 0);

  for (simd::Level level : simd::SupportedLevels()) {
    ASSERT_EQ(simd::SetLevel(level), level);
    // n values straddling the 8-probe prefetch block and its tails.
    for (size_t n : {(size_t)0, (size_t)1, (size_t)7, (size_t)8, (size_t)9,
                     (size_t)64, kProbes}) {
      std::vector<uint8_t> got(n, 0xEE);
      idx.ContainsBatch(probes.data(), n, got.data());
      ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
          << "level=" << simd::LevelName(level) << " n=" << n;
    }
  }
}

TEST_F(SimdKernelsTest, TombstoneFilterMatchesOracleUnderChurn) {
  Database db;
  MakeRandomGraph(db, "R", 12, 60, true, 5);
  const AdornedView view = TriangleView("fff");
  UpdatableRepOptions opt;
  opt.rep.tau = 2.0;
  opt.rebuild_fraction = 1e9;  // keep tombstones live (no auto-rebuild)
  auto rep = UpdatableRep::Build(view, db, opt);
  ASSERT_TRUE(rep.ok()) << rep.status().message();

  // Current edge set, replayed into a fresh database for the oracle.
  std::set<Tuple> edges;
  const Relation* r0 = db.Find("R");
  for (size_t i = 0; i < r0->size(); ++i)
    edges.insert({r0->At(i, 0), r0->At(i, 1)});

  Rng rng(31);
  for (int round = 0; round < 4; ++round) {
    // Delete a slice of surviving edges (drives the tombstone filter) and
    // insert a few new ones (exercises delta + snapshot mixing).
    std::vector<Tuple> alive(edges.begin(), edges.end());
    for (int i = 0; i < 8 && !alive.empty(); ++i) {
      const Tuple& t = alive[rng.Uniform(alive.size())];
      if (!edges.count(t)) continue;
      ASSERT_TRUE(rep.value()->Delete("R", t).ok());
      edges.erase(t);
    }
    for (int i = 0; i < 4; ++i) {
      Value a = rng.UniformRange(1, 12), b = rng.UniformRange(1, 12);
      if (a == b || edges.count({a, b})) continue;
      ASSERT_TRUE(rep.value()->Insert("R", {a, b}).ok());
      edges.insert({a, b});
    }

    Database current;
    Relation* rel = current.AddRelation("R", 2);
    for (const Tuple& t : edges) rel->Insert(t);
    rel->Seal();
    const std::vector<Tuple> want = OracleAnswer(view, current, {});

    // The block filter (ContainsBatch over staged candidates) must agree
    // with the oracle at every dispatch level — and with itself across
    // levels, single-tuple and batched drains alike.
    std::vector<Tuple> scalar_single;
    for (simd::Level level : simd::SupportedLevels()) {
      ASSERT_EQ(simd::SetLevel(level), level);
      std::vector<Tuple> single = CollectAll(*rep.value()->Answer({}));
      const TupleBuffer batched =
          CollectAllBatched(*rep.value()->Answer({}), view.num_free(), 33);
      std::vector<Tuple> batched_tuples;
      for (size_t i = 0; i < batched.size(); ++i) {
        const TupleSpan t = batched[i];
        batched_tuples.emplace_back(t.begin(), t.end());
      }
      EXPECT_EQ(SortedCopy(single), want)
          << "level=" << simd::LevelName(level) << " round=" << round;
      EXPECT_EQ(batched_tuples, single)
          << "level=" << simd::LevelName(level) << " round=" << round;
      if (level == simd::Level::kScalar)
        scalar_single = single;
      else
        EXPECT_EQ(single, scalar_single)
            << "level=" << simd::LevelName(level) << " round=" << round;
    }
  }
  EXPECT_EQ(rep.value()->num_rebuilds(), 0);
}

}  // namespace
}  // namespace cqc

// Serving-layer chaos: N concurrent wire clients hammer a CqcServer while
// failpoints fire inside builds, delta application, and snapshot folds,
// and some requests carry already-hopeless deadlines. The contract under
// fault injection is the serving contract of docs/robustness.md lifted to
// the wire: requests may FAIL (with a clean, coded status), but an OK
// response always carries exactly the oracle's rows, sessions never leak,
// and the server never crashes or hangs.
//
// Also home to the read-coalescing assertions (docs/serving.md): K
// concurrent identical queries trigger exactly one shared drain, and
// every waiter receives byte-identical rows.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/coalescer.h"
#include "serve/server.h"
#include "tests/test_util.h"
#include "util/failpoint.h"

namespace cqc {
namespace serve {
namespace {

using ::cqc::testing::AddRelation;

constexpr char kView[] = "Q^bff(x,y,z) = R1(x,y), R2(y,z)";

/// R1 = [1..4] x [1..4]; R2 = [1..4] x [1..3]. Every query "? k" for
/// k in 1..4 answers the same 12 (y, z) pairs; chaos mutations touch only
/// the disjoint id range >= 100 and cannot perturb that oracle.
Database MakeChaosDb() {
  Database db;
  std::vector<Tuple> r1, r2;
  for (Value x = 1; x <= 4; ++x)
    for (Value y = 1; y <= 4; ++y) r1.push_back({x, y});
  for (Value y = 1; y <= 4; ++y)
    for (Value z = 1; z <= 3; ++z) r2.push_back({y, z});
  AddRelation(db, "R1", 2, r1);
  AddRelation(db, "R2", 2, r2);
  return db;
}

/// The (y, z) rows every in-range query must answer, as a sorted multiset
/// (order-independent: shards and degraded fallbacks may enumerate in a
/// different — still correct — order).
std::vector<uint64_t> OracleRowsSorted() {
  std::vector<std::pair<uint64_t, uint64_t>> rows;
  for (uint64_t y = 1; y <= 4; ++y)
    for (uint64_t z = 1; z <= 3; ++z) rows.push_back({y, z});
  std::sort(rows.begin(), rows.end());
  std::vector<uint64_t> flat;
  for (const auto& [y, z] : rows) {
    flat.push_back(y);
    flat.push_back(z);
  }
  return flat;
}

std::vector<uint64_t> SortedRows(const WireResponse& resp) {
  std::vector<std::pair<uint64_t, uint64_t>> rows;
  for (size_t i = 0; i + 1 < resp.values.size(); i += 2)
    rows.push_back({resp.values[i], resp.values[i + 1]});
  std::sort(rows.begin(), rows.end());
  std::vector<uint64_t> flat;
  for (const auto& [y, z] : rows) {
    flat.push_back(y);
    flat.push_back(z);
  }
  return flat;
}

class ServerChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DisarmAll();
    ReadCoalescer::SetDrainHoldForTest(std::chrono::milliseconds(0));
  }
  void TearDown() override {
    failpoint::DisarmAll();
    ReadCoalescer::SetDrainHoldForTest(std::chrono::milliseconds(0));
  }

  void StartServer(ServerOptions opts = {}) {
    db_ = MakeChaosDb();
    opts.port = 0;
    // Churn > 0 steers the planner to the updatable structure, which is
    // what gives wire mutations somewhere to land (docs/serving.md).
    opts.cache.planner.churn_per_request = 0.5;
    server_ = std::make_unique<CqcServer>(&db_, opts);
    ASSERT_TRUE(server_->Start().ok());
  }

  /// The zero-leak postcondition every soak must satisfy.
  void ExpectCleanShutdown() {
    server_->Stop();
    const ServerStats st = server_->stats();
    EXPECT_EQ(st.active_sessions, 0u) << "leaked sessions";
    EXPECT_EQ(st.open_fds, 0u) << "leaked fds";
    EXPECT_EQ(st.sessions_opened, st.sessions_closed);
    EXPECT_EQ(st.inflight_requests, 0u) << "leaked request slots";
  }

  Database db_;
  std::unique_ptr<CqcServer> server_;
};

// ---------------------------------------------------------------------------
// Read-path coalescing.
// ---------------------------------------------------------------------------

TEST_F(ServerChaosTest, ConcurrentIdenticalQueriesShareExactlyOneDrain) {
  ServerOptions opts;
  opts.worker_threads = 4;
  StartServer(opts);

  // Warm the cache so the measured phase is pure read path: the first
  // query pays the build; its drain is counted, then snapshotted away.
  Client warm;
  ASSERT_TRUE(warm.Connect("127.0.0.1", server_->port()).ok());
  WireRequest req;
  req.view = kView;
  req.body = "? 2";
  req.deadline_ms = 30'000;
  req.request_id = 1;
  WireResponse resp;
  ASSERT_TRUE(warm.Call(req, &resp).ok());
  ASSERT_EQ(resp.code, StatusCode::kOk);
  warm.Close();
  const ServerStats before = server_->stats();

  // All K clients connect first, THEN the drain hold opens a wide window:
  // the first request to arrive leads and sleeps before draining, so the
  // other K-1 — sent within the window — MUST attach to its drain.
  constexpr size_t kClients = 8;
  std::vector<Client> clients(kClients);
  for (auto& c : clients)
    ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  ReadCoalescer::SetDrainHoldForTest(std::chrono::milliseconds(1000));

  std::atomic<size_t> ready{0};
  std::vector<WireResponse> responses(kClients);
  std::vector<Status> statuses(kClients, Status::Ok());
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      ready.fetch_add(1);
      while (ready.load() < kClients) std::this_thread::yield();
      WireRequest r;
      r.view = kView;
      r.body = "? 2";  // identical body -> one coalescing key
      r.deadline_ms = 30'000;
      r.request_id = 100 + i;
      statuses[i] = clients[i].Call(r, &responses[i]);
    });
  }
  for (auto& t : threads) t.join();
  ReadCoalescer::SetDrainHoldForTest(std::chrono::milliseconds(0));

  for (size_t i = 0; i < kClients; ++i) {
    ASSERT_TRUE(statuses[i].ok()) << statuses[i].message();
    ASSERT_EQ(responses[i].code, StatusCode::kOk) << responses[i].message;
    EXPECT_EQ(responses[i].request_id, 100 + i);
    // Byte-identical answers: same arity, same values, same ORDER — the
    // shared drain is one enumeration, not K merged ones.
    EXPECT_EQ(responses[i].arity, responses[0].arity);
    EXPECT_EQ(responses[i].values, responses[0].values);
  }
  EXPECT_EQ(SortedRows(responses[0]), OracleRowsSorted());

  const ServerStats after = server_->stats();
  EXPECT_EQ(after.shared_drains - before.shared_drains, 1u)
      << "K concurrent identical queries must trigger exactly one drain";
  EXPECT_EQ(after.coalesced_reads - before.coalesced_reads, kClients - 1);
  for (auto& c : clients) c.Close();
  ExpectCleanShutdown();
}

TEST_F(ServerChaosTest, NoCoalesceFlagForcesPrivateDrains) {
  ServerOptions opts;
  opts.worker_threads = 4;
  StartServer(opts);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  WireRequest req;
  req.view = kView;
  req.body = "? 1";
  req.deadline_ms = 30'000;
  req.flags = kFlagNoCoalesce;
  WireResponse resp;
  for (uint64_t id = 1; id <= 3; ++id) {
    req.request_id = id;
    ASSERT_TRUE(client.Call(req, &resp).ok());
    ASSERT_EQ(resp.code, StatusCode::kOk);
    EXPECT_EQ(SortedRows(resp), OracleRowsSorted());
  }
  const ServerStats st = server_->stats();
  EXPECT_EQ(st.shared_drains, 0u);
  EXPECT_EQ(st.coalesced_reads, 0u);
  client.Close();
  ExpectCleanShutdown();
}

TEST_F(ServerChaosTest, AdmissionCapCountsParkedWaiters) {
  // A parked waiter holds its tenant admission slot until the shared
  // drain completes, so per_tenant_inflight bounds coalesced reads too.
  ServerOptions opts;
  opts.worker_threads = 4;
  opts.per_tenant_inflight = 2;
  StartServer(opts);
  Client warm;
  ASSERT_TRUE(warm.Connect("127.0.0.1", server_->port()).ok());
  WireRequest req;
  req.view = kView;
  req.body = "? 3";
  req.deadline_ms = 30'000;
  req.request_id = 1;
  WireResponse resp;
  ASSERT_TRUE(warm.Call(req, &resp).ok());
  warm.Close();

  constexpr size_t kClients = 3;
  std::vector<Client> clients(kClients);
  for (auto& c : clients)
    ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  ReadCoalescer::SetDrainHoldForTest(std::chrono::milliseconds(1000));
  std::atomic<size_t> ready{0};
  std::vector<WireResponse> responses(kClients);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      ready.fetch_add(1);
      while (ready.load() < kClients) std::this_thread::yield();
      WireRequest r;
      r.view = kView;
      r.body = "? 3";
      r.deadline_ms = 30'000;
      r.request_id = 10 + i;
      (void)clients[i].Call(r, &responses[i]);
    });
  }
  for (auto& t : threads) t.join();
  ReadCoalescer::SetDrainHoldForTest(std::chrono::milliseconds(0));

  size_t ok = 0, rejected = 0;
  for (const auto& r : responses) {
    if (r.code == StatusCode::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(r.code, StatusCode::kUnavailable) << r.message;
      EXPECT_NE(r.message.find("admission"), std::string::npos);
      ++rejected;
    }
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(rejected, 1u);
  EXPECT_GE(server_->stats().admission_rejected, 1u);
  for (auto& c : clients) c.Close();
  ExpectCleanShutdown();
}

// ---------------------------------------------------------------------------
// Fault-injection soak.
// ---------------------------------------------------------------------------

TEST_F(ServerChaosTest, ConcurrentClientsUnderFailpointsNeverWrongAnswers) {
  ServerOptions opts;
  opts.worker_threads = 4;
  // Let injected faults surface quickly instead of retrying forever, and
  // keep some builds failing outright so error paths get real traffic.
  opts.cache.max_build_attempts = 2;
  opts.cache.build_retry_backoff = std::chrono::milliseconds(1);
  StartServer(opts);

  failpoint::Arm("build/any", {.probability = 0.3});
  failpoint::Arm("rep_cache/apply_delta", {.probability = 0.3});
  failpoint::Arm("updatable/rebuild", {.probability = 0.3});

  const std::vector<uint64_t> oracle = OracleRowsSorted();
  constexpr size_t kClients = 8;
  constexpr size_t kRequests = 40;
  std::atomic<size_t> wrong_answers{0};
  std::atomic<size_t> dirty_failures{0};
  std::atomic<size_t> transport_errors{0};
  std::atomic<size_t> ok_count{0}, fail_count{0};

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        transport_errors.fetch_add(1);
        return;
      }
      // Every client works its own tenant: per-tenant caches mean each
      // thread exercises its own build/mutate path while sharing the
      // server, so build failpoints fire independently per tenant.
      const std::string tenant = "tenant-" + std::to_string(t % 4);
      for (size_t i = 0; i < kRequests; ++i) {
        WireRequest req;
        req.tenant = tenant;
        req.view = kView;
        req.request_id = t * 1000 + i;
        req.deadline_ms = 10'000;
        const int kind = (int)((t + i) % 5);
        const uint64_t mut_id = 100 + t;  // disjoint from the oracle range
        switch (kind) {
          case 0:
          case 1:
            req.body = "? " + std::to_string(1 + (i % 4));
            break;
          case 2:
            req.body = "agg count 1 " + std::to_string(1 + (i % 4));
            break;
          case 3:
            req.body = (i % 2 == 0 ? "+ R1 " : "- R1 ") +
                       std::to_string(mut_id) + " 1";
            break;
          case 4:
            req.body = "? 1";
            req.deadline_ms = 1;  // injected expiry: hopeless on a miss
            break;
        }
        WireResponse resp;
        if (Status s = client.Call(req, &resp); !s.ok()) {
          // The transport itself must stay healthy: request-level faults
          // are in-band (coded responses), never dropped connections.
          transport_errors.fetch_add(1);
          return;
        }
        if (resp.request_id != req.request_id) {
          wrong_answers.fetch_add(1);
          continue;
        }
        if (resp.code != StatusCode::kOk) {
          fail_count.fetch_add(1);
          // Clean failure: a coded status with a reason, never silence.
          if (resp.message.empty()) dirty_failures.fetch_add(1);
          continue;
        }
        ok_count.fetch_add(1);
        if (kind <= 1) {
          // An OK enumeration must be EXACTLY the oracle: faults may
          // fail a request, they may never corrupt one.
          if (SortedRows(resp) != oracle) wrong_answers.fetch_add(1);
        } else if (kind == 2) {
          uint64_t total = 0;
          for (size_t g = 0; g < resp.num_rows(); ++g)
            total += resp.values[g * resp.arity + 1];
          if (total != 12) wrong_answers.fetch_add(1);
        }
      }
      client.Close();
    });
  }
  for (auto& th : threads) th.join();
  failpoint::DisarmAll();

  EXPECT_EQ(wrong_answers.load(), 0u)
      << "a fault may fail a request but never corrupt an answer";
  EXPECT_EQ(dirty_failures.load(), 0u) << "failures must carry a reason";
  EXPECT_EQ(transport_errors.load(), 0u)
      << "request-level faults must not kill connections";
  // The soak is only meaningful if both paths actually ran.
  EXPECT_GT(ok_count.load(), 0u);
  EXPECT_GT(fail_count.load(), 0u) << "no injected fault ever surfaced";
  ExpectCleanShutdown();
}

TEST_F(ServerChaosTest, MutationsLandInTheTenantsStructureOnly) {
  ServerOptions opts;
  opts.worker_threads = 2;
  StartServer(opts);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  WireRequest req;
  req.tenant = "writer";
  req.view = kView;
  req.deadline_ms = 30'000;
  WireResponse resp;

  // Insert a brand-new join result: R1(7 -> 1) joins the existing
  // R2(1, z) rows, so "? 7" goes from empty to 3 rows.
  req.request_id = 1;
  req.body = "? 7";
  ASSERT_TRUE(client.Call(req, &resp).ok());
  ASSERT_EQ(resp.code, StatusCode::kOk) << resp.message;
  EXPECT_EQ(resp.num_rows(), 0u);

  req.request_id = 2;
  req.body = "+ R1 7 1";
  ASSERT_TRUE(client.Call(req, &resp).ok());
  ASSERT_EQ(resp.code, StatusCode::kOk) << resp.message;

  req.request_id = 3;
  req.body = "? 7";
  ASSERT_TRUE(client.Call(req, &resp).ok());
  ASSERT_EQ(resp.code, StatusCode::kOk) << resp.message;
  EXPECT_EQ(resp.num_rows(), 3u);  // (1,1) (1,2) (1,3)

  // The delta lives in the "writer" tenant's structure; a different
  // tenant plans and builds from the UNMUTATED base tables.
  req.tenant = "reader";
  req.request_id = 4;
  req.body = "? 7";
  ASSERT_TRUE(client.Call(req, &resp).ok());
  ASSERT_EQ(resp.code, StatusCode::kOk) << resp.message;
  EXPECT_EQ(resp.num_rows(), 0u) << "tenant isolation: the base tables "
                                    "must never absorb a wire mutation";

  // And the base database object itself is untouched.
  EXPECT_FALSE(db_.Find("R1")->Contains(Tuple{7, 1}));
  client.Close();
  ExpectCleanShutdown();
}

TEST_F(ServerChaosTest, HopelessDeadlineFailsCleanlyAndKeepsServing) {
  ServerOptions opts;
  opts.worker_threads = 2;
  StartServer(opts);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  WireRequest req;
  req.view = kView;
  req.deadline_ms = 1;  // expires during the build on a cold cache
  req.request_id = 1;
  req.body = "? 1";
  WireResponse resp;
  ASSERT_TRUE(client.Call(req, &resp).ok());
  if (resp.code != StatusCode::kOk) {
    // DEADLINE_EXCEEDED is the expected shape; a deadline that expires
    // inside a coalesced build wait may surface as UNAVAILABLE.
    EXPECT_TRUE(resp.code == StatusCode::kDeadlineExceeded ||
                resp.code == StatusCode::kUnavailable)
        << resp.message;
  }
  // The expired request must not have poisoned anything: a sane deadline
  // now succeeds with the full answer.
  req.request_id = 2;
  req.deadline_ms = 30'000;
  ASSERT_TRUE(client.Call(req, &resp).ok());
  ASSERT_EQ(resp.code, StatusCode::kOk) << resp.message;
  EXPECT_EQ(SortedRows(resp), OracleRowsSorted());
  client.Close();
  ExpectCleanShutdown();
}

}  // namespace
}  // namespace serve
}  // namespace cqc

#include <gtest/gtest.h>

#include <cmath>

#include "core/cost_model.h"
#include "core/dbtree.h"
#include "core/lex_domain.h"
#include "core/splitter.h"
#include "fractional/edge_cover.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace cqc {
namespace {

using testing::AddRelation;

// Bundles the machinery Theorem 1 needs below the tree level.
struct SplitRig {
  Database db;
  std::unique_ptr<AdornedView> view;
  std::vector<BoundAtom> atoms;
  std::unique_ptr<LexDomain> domain;
  std::unique_ptr<CostModel> cost;
  double alpha = 1;

  void Init(const std::string& view_text, const std::vector<double>& u) {
    auto v = ParseAdornedView(view_text);
    CQC_CHECK(v.ok()) << v.status().message();
    view = std::make_unique<AdornedView>(std::move(v).value());
    for (const Atom& atom : view->cq().atoms())
      atoms.emplace_back(atom, *db.Find(atom.relation), view->bound_vars(),
                         view->free_vars());
    Hypergraph h(view->cq());
    alpha = Slack(h, u, view->free_set());
    std::vector<double> exponents(u.size());
    for (size_t f = 0; f < u.size(); ++f) exponents[f] = u[f] / alpha;
    std::vector<std::vector<Value>> doms(view->num_free());
    for (int i = 0; i < view->num_free(); ++i) {
      std::set<Value> merged;
      for (const BoundAtom& atom : atoms)
        for (int p : atom.free_positions())
          if (p == i) {
            const auto& d = atom.FreeDomain(i);
            merged.insert(d.begin(), d.end());
          }
      doms[i].assign(merged.begin(), merged.end());
    }
    domain = std::make_unique<LexDomain>(std::move(doms));
    cost = std::make_unique<CostModel>(&atoms, std::move(exponents));
  }
};

void FillRandomBinary(Database& db, const std::string& name, int n,
                      uint64_t dom, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> rows;
  for (int i = 0; i < n; ++i)
    rows.push_back({rng.UniformRange(1, dom), rng.UniformRange(1, dom)});
  AddRelation(db, name, 2, rows);
}

TEST(CostModelTest, CountsMatchBruteForce) {
  SplitRig s;
  AddRelation(s.db, "R", 2, {{1, 1}, {1, 2}, {2, 1}, {3, 3}});
  AddRelation(s.db, "S", 2, {{1, 1}, {2, 2}, {2, 3}, {3, 1}});
  s.Init("Q^ff(x,y) = R(x,y), S(y,x)", {1.0, 1.0});
  // Box <1, *>: R has 2 rows with x=1; S has... S(y,x): free order (x,y);
  // S's columns: y=col0, x=col1. x=1 rows in S: (1,1),(3,1) -> 2.
  FBox box{{FBoxDim::Unit(1), FBoxDim::Any()}};
  // alpha: coverage of x = 2, y = 2 -> alpha 2; exponents 1/2 each.
  double expected = std::sqrt(2.0) * std::sqrt(2.0);
  EXPECT_NEAR(s.cost->BoxCost(box), expected, 1e-9);
}

TEST(CostModelTest, IntervalCostSumsBoxes) {
  SplitRig s;
  AddRelation(s.db, "R", 2, {{1, 1}, {1, 2}, {2, 1}, {2, 2}});
  s.Init("Q^ff(x,y) = R(x,y)", {1.0});
  FInterval whole{s.domain->MinTuple(), s.domain->MaxTuple()};
  // Single relation, alpha = 1, exponent 1: T(whole) = |R| = 4.
  EXPECT_NEAR(s.cost->IntervalCost(whole), 4.0, 1e-9);
}

TEST(CostModelTest, BoundRestrictionShrinksCost) {
  SplitRig s;
  AddRelation(s.db, "R", 2, {{1, 10}, {1, 20}, {2, 10}, {2, 30}, {2, 40}});
  s.Init("Q^bf(x,y) = R(x,y)", {1.0});
  FInterval whole{s.domain->MinTuple(), s.domain->MaxTuple()};
  EXPECT_NEAR(s.cost->IntervalCostBound(Tuple{1}, whole), 2.0, 1e-9);
  EXPECT_NEAR(s.cost->IntervalCostBound(Tuple{2}, whole), 3.0, 1e-9);
  EXPECT_NEAR(s.cost->IntervalCostBound(Tuple{9}, whole), 0.0, 1e-9);
}

// Proposition 8 as a property test: the split point lies inside and both
// halves cost at most T/2 (modulo floating-point slack).
TEST(SplitterTest, BalancePropertySweep) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SplitRig s;
    FillRandomBinary(s.db, "R", 60, 15, seed);
    FillRandomBinary(s.db, "S", 60, 15, seed + 100);
    FillRandomBinary(s.db, "T", 60, 15, seed + 200);
    s.Init("Q^fff(x,y,z) = R(x,y), S(y,z), T(z,x)", {1.0, 1.0, 1.0});
    ASSERT_FALSE(s.domain->AnyEmpty());
    FInterval whole{s.domain->MinTuple(), s.domain->MaxTuple()};
    double total = s.cost->IntervalCost(whole);
    if (total <= 0) continue;

    SplitResult split = SplitInterval(whole, *s.domain, *s.cost);
    EXPECT_NEAR(split.total_cost, total, total * 1e-9);
    ASSERT_TRUE(whole.Contains(split.c)) << "seed " << seed;

    FInterval left, right;
    const double budget = total / 2 + 1e-7 * total;
    if (DelayBalancedTree::LeftInterval(whole, split.c, *s.domain, &left))
      EXPECT_LE(s.cost->IntervalCost(left), budget) << "seed " << seed;
    if (DelayBalancedTree::RightInterval(whole, split.c, *s.domain, &right))
      EXPECT_LE(s.cost->IntervalCost(right), budget) << "seed " << seed;
  }
}

TEST(SplitterTest, RecursiveSplittingTerminates) {
  SplitRig s;
  FillRandomBinary(s.db, "R", 80, 12, 5);
  s.Init("Q^ff(x,y) = R(x,y)", {1.0});
  // Repeatedly split the leftmost interval; cost must halve every time.
  FInterval cur{s.domain->MinTuple(), s.domain->MaxTuple()};
  double prev = s.cost->IntervalCost(cur);
  int steps = 0;
  while (prev > 1 && !cur.IsUnit() && steps < 64) {
    SplitResult split = SplitInterval(cur, *s.domain, *s.cost);
    FInterval left;
    if (!DelayBalancedTree::LeftInterval(cur, split.c, *s.domain, &left)) {
      // Left half empty: continue on the right side.
      ASSERT_TRUE(
          DelayBalancedTree::RightInterval(cur, split.c, *s.domain, &left));
    }
    double now = s.cost->IntervalCost(left);
    EXPECT_LE(now, prev / 2 + 1e-6 * prev);
    cur = left;
    prev = now;
    ++steps;
  }
  EXPECT_LT(steps, 64);
}

TEST(DbTreeTest, ThresholdFormula) {
  // tau_l = tau * 2^{-l (1 - 1/alpha)}.
  EXPECT_DOUBLE_EQ(DelayBalancedTree::Threshold(8.0, 2.0, 0), 8.0);
  EXPECT_DOUBLE_EQ(DelayBalancedTree::Threshold(8.0, 2.0, 2), 4.0);
  EXPECT_DOUBLE_EQ(DelayBalancedTree::Threshold(8.0, 1.0, 5), 8.0);
}

TEST(DbTreeTest, CostHalvesPerLevel) {
  SplitRig s;
  FillRandomBinary(s.db, "R", 100, 20, 9);
  FillRandomBinary(s.db, "S", 100, 20, 10);
  s.Init("Q^fff(x,y,z) = R(x,y), S(y,z)", {1.0, 1.0});
  DelayBalancedTree::BuildParams params;
  params.tau = 2.0;
  params.alpha = s.alpha;
  DelayBalancedTree tree =
      DelayBalancedTree::Build(*s.domain, *s.cost, params);
  ASSERT_FALSE(tree.empty());
  double root_cost = tree.node(0).cost;
  for (size_t i = 0; i < tree.size(); ++i) {
    const DbTreeNode& n = tree.node(i);
    // Lemma 4 item (1).
    EXPECT_LE(n.cost,
              root_cost / std::pow(2.0, n.level) + 1e-5 * root_cost);
    if (!n.leaf) {
      EXPECT_GE(
          n.cost,
          DelayBalancedTree::Threshold(params.tau, params.alpha, n.level) -
              1e-9);
    }
  }
}

TEST(DbTreeTest, LeavesBelowThresholdOrUnit) {
  SplitRig s;
  FillRandomBinary(s.db, "R", 50, 10, 21);
  s.Init("Q^ff(x,y) = R(x,y)", {1.0});
  DelayBalancedTree::BuildParams params;
  params.tau = 4.0;
  params.alpha = 1.0;
  DelayBalancedTree tree =
      DelayBalancedTree::Build(*s.domain, *s.cost, params);
  for (size_t i = 0; i < tree.size(); ++i) {
    const DbTreeNode& n = tree.node(i);
    if (n.leaf) continue;
    EXPECT_GE(n.cost, DelayBalancedTree::Threshold(params.tau, 1.0, n.level));
    EXPECT_FALSE(n.beta.empty());
  }
}

TEST(DbTreeTest, EmptyDomainYieldsEmptyTree) {
  SplitRig s;
  AddRelation(s.db, "R", 2, {});
  s.Init("Q^ff(x,y) = R(x,y)", {1.0});
  DelayBalancedTree::BuildParams params;
  params.tau = 1.0;
  params.alpha = 1.0;
  DelayBalancedTree tree =
      DelayBalancedTree::Build(*s.domain, *s.cost, params);
  EXPECT_TRUE(tree.empty());
}

TEST(DbTreeTest, LargeTauSingleLeaf) {
  SplitRig s;
  FillRandomBinary(s.db, "R", 30, 8, 33);
  s.Init("Q^ff(x,y) = R(x,y)", {1.0});
  DelayBalancedTree::BuildParams params;
  params.tau = 1e9;  // everything fits under the threshold
  params.alpha = 1.0;
  DelayBalancedTree tree =
      DelayBalancedTree::Build(*s.domain, *s.cost, params);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.node(0).leaf);
}

}  // namespace
}  // namespace cqc

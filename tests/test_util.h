// Shared test helpers: database builders and a naive join oracle that every
// data structure is validated against.
#ifndef CQC_TESTS_TEST_UTIL_H_
#define CQC_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "query/adorned_view.h"
#include "query/normalize.h"
#include "relational/database.h"
#include "util/common.h"
#include "util/logging.h"

namespace cqc {
namespace testing {

/// Adds a sealed relation with the given rows.
inline Relation* AddRelation(Database& db, const std::string& name,
                             int arity, const std::vector<Tuple>& rows) {
  Relation* r = db.AddRelation(name, arity);
  for (const Tuple& t : rows) r->Insert(t);
  r->Seal();
  return r;
}

/// Brute-force evaluation of a (possibly non-natural) full CQ: recursive
/// backtracking over atoms with an explicit variable assignment. Returns
/// head tuples, sorted and deduplicated.
inline std::vector<Tuple> NaiveEvaluate(const ConjunctiveQuery& cq,
                                        const Database& db,
                                        const Database* aux_db = nullptr) {
  CQC_CHECK(cq.IsFull());
  std::vector<const Relation*> rels;
  for (const Atom& atom : cq.atoms()) {
    const Relation* r = ResolveRelation(atom.relation, db, aux_db);
    CQC_CHECK(r != nullptr) << atom.relation;
    rels.push_back(r);
  }
  std::map<VarId, Value> assignment;
  std::vector<Tuple> out;

  std::function<void(size_t)> recurse = [&](size_t ai) {
    if (ai == cq.atoms().size()) {
      Tuple head;
      for (VarId v : cq.head()) head.push_back(assignment.at(v));
      out.push_back(std::move(head));
      return;
    }
    const Atom& atom = cq.atoms()[ai];
    const Relation* rel = rels[ai];
    for (size_t row = 0; row < rel->size(); ++row) {
      std::vector<VarId> newly;
      bool ok = true;
      for (int c = 0; c < atom.arity() && ok; ++c) {
        const Term& t = atom.terms[c];
        Value v = rel->At(row, c);
        if (!t.is_var) {
          ok = (v == t.constant);
        } else if (auto it = assignment.find(t.var);
                   it != assignment.end()) {
          ok = (it->second == v);
        } else {
          assignment[t.var] = v;
          newly.push_back(t.var);
        }
      }
      if (ok) recurse(ai + 1);
      for (VarId v : newly) assignment.erase(v);
    }
  };
  recurse(0);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Oracle for an access request: the sorted distinct free-variable tuples
/// of the view matching the bound valuation.
inline std::vector<Tuple> OracleAnswer(const AdornedView& view,
                                       const Database& db,
                                       const BoundValuation& vb,
                                       const Database* aux_db = nullptr) {
  std::vector<Tuple> full = NaiveEvaluate(view.cq(), db, aux_db);
  // Head layout: positions of bound and free vars within the head.
  std::vector<int> bound_pos, free_pos;
  for (size_t i = 0; i < view.cq().head().size(); ++i) {
    if (view.adornment()[i] == Binding::kBound)
      bound_pos.push_back((int)i);
    else
      free_pos.push_back((int)i);
  }
  std::vector<Tuple> out;
  for (const Tuple& t : full) {
    bool match = true;
    for (size_t i = 0; i < bound_pos.size(); ++i)
      if (t[bound_pos[i]] != vb[i]) {
        match = false;
        break;
      }
    if (!match) continue;
    Tuple free;
    for (int p : free_pos) free.push_back(t[p]);
    out.push_back(std::move(free));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// All distinct bound valuations present in the full result (guaranteed
/// non-empty answers), plus a few that are absent.
inline std::vector<BoundValuation> InterestingBoundValuations(
    const AdornedView& view, const Database& db,
    const Database* aux_db = nullptr) {
  std::vector<Tuple> full = NaiveEvaluate(view.cq(), db, aux_db);
  std::vector<int> bound_pos;
  for (size_t i = 0; i < view.cq().head().size(); ++i)
    if (view.adornment()[i] == Binding::kBound) bound_pos.push_back((int)i);
  std::set<BoundValuation> vals;
  for (const Tuple& t : full) {
    BoundValuation vb;
    for (int p : bound_pos) vb.push_back(t[p]);
    vals.insert(vb);
  }
  std::vector<BoundValuation> out(vals.begin(), vals.end());
  // A couple of misses: all-zeros and a large constant.
  out.push_back(BoundValuation(bound_pos.size(), 0));
  out.push_back(BoundValuation(bound_pos.size(), 999999999));
  return out;
}

/// True iff `tuples` is strictly increasing lexicographically.
inline bool IsStrictlySortedLex(const std::vector<Tuple>& tuples) {
  for (size_t i = 1; i < tuples.size(); ++i)
    if (!(tuples[i - 1] < tuples[i])) return false;
  return true;
}

inline std::vector<Tuple> SortedCopy(std::vector<Tuple> t) {
  std::sort(t.begin(), t.end());
  return t;
}

}  // namespace testing
}  // namespace cqc

#endif  // CQC_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "core/enumerator.h"

namespace cqc {
namespace {

TEST(EnumeratorTest, EmptyEnumerator) {
  EmptyEnumerator e;
  Tuple t;
  EXPECT_FALSE(e.Next(&t));
  EXPECT_FALSE(e.Next(&t));
}

TEST(EnumeratorTest, VectorEnumerator) {
  VectorEnumerator e({{1, 2}, {3, 4}});
  Tuple t;
  ASSERT_TRUE(e.Next(&t));
  EXPECT_EQ(t, (Tuple{1, 2}));
  ASSERT_TRUE(e.Next(&t));
  EXPECT_EQ(t, (Tuple{3, 4}));
  EXPECT_FALSE(e.Next(&t));
}

TEST(EnumeratorTest, CollectAll) {
  VectorEnumerator e({{1}, {2}, {3}});
  auto all = CollectAll(e);
  EXPECT_EQ(all.size(), 3u);
}

TEST(EnumeratorTest, MeasureCountsAndOps) {
  // An enumerator that burns a known number of ops per tuple.
  class OpBurner : public TupleEnumerator {
   public:
    bool Next(Tuple* out) override {
      if (i_ >= 5) {
        ops::Bump(100);  // expensive exhaustion detection
        return false;
      }
      ops::Bump(10 * (i_ + 1));  // growing per-tuple work
      out->assign(1, i_++);
      return true;
    }

   private:
    Value i_ = 0;
  };
  OpBurner e;
  DelayProfile p = MeasureEnumeration(e);
  EXPECT_EQ(p.num_tuples, 5u);
  // Worst gap: max(10,20,30,40,50,100) = 100 (the exhaustion step).
  EXPECT_EQ(p.max_delay_ops, 100u);
  EXPECT_EQ(p.total_ops, 10u + 20 + 30 + 40 + 50 + 100);
}

TEST(EnumeratorTest, MeasureSinkCollects) {
  VectorEnumerator e({{7}, {8}});
  std::vector<Tuple> sink;
  DelayProfile p = MeasureEnumeration(e, &sink);
  EXPECT_EQ(p.num_tuples, 2u);
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink[0], (Tuple{7}));
}

TEST(EnumeratorTest, EmptyResultStillMeasuresExhaustion) {
  EmptyEnumerator e;
  DelayProfile p = MeasureEnumeration(e);
  EXPECT_EQ(p.num_tuples, 0u);
  EXPECT_GE(p.total_seconds, 0.0);
}

TEST(ProjectingEnumeratorTest, DedupsProjections) {
  auto inner = std::make_unique<VectorEnumerator>(std::vector<Tuple>{
      {1, 10, 5}, {1, 20, 5}, {2, 10, 6}, {1, 30, 5}, {2, 40, 7}});
  ProjectingEnumerator e(std::move(inner), {0, 2});
  auto got = CollectAll(e);
  EXPECT_EQ(got, (std::vector<Tuple>{{1, 5}, {2, 6}, {2, 7}}));
}

TEST(ProjectingEnumeratorTest, ReorderAndRepeatColumns) {
  auto inner = std::make_unique<VectorEnumerator>(
      std::vector<Tuple>{{1, 2}, {3, 4}});
  ProjectingEnumerator e(std::move(inner), {1, 0, 1});
  auto got = CollectAll(e);
  EXPECT_EQ(got, (std::vector<Tuple>{{2, 1, 2}, {4, 3, 4}}));
}

TEST(ProjectingEnumeratorTest, CoauthorProjectionUseCase) {
  // The paper's intro view V^bf(x,y) = R(x,p), R(y,p): project the witness
  // paper away from the full variant and deduplicate co-authors.
  auto inner = std::make_unique<VectorEnumerator>(std::vector<Tuple>{
      {7, 100}, {7, 101}, {8, 100}, {9, 200}});  // (y, p) pairs
  ProjectingEnumerator e(std::move(inner), {0});
  auto got = CollectAll(e);
  EXPECT_EQ(got, (std::vector<Tuple>{{7}, {8}, {9}}));
}

}  // namespace
}  // namespace cqc

// Chaos suite (docs/robustness.md): randomized failpoint sweeps under
// concurrent load, the deadline contract across every rep family, and the
// degraded-mode guarantee that fallback answers are byte-identical to the
// planned structure's. Every injected fault must surface as a Status on
// some request — never a crash, a hang, or a silently wrong answer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "core/enumerator.h"
#include "plan/answer_rep.h"
#include "plan/rep_cache.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "util/failpoint.h"
#include "util/request_context.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::AddRelation;
using testing::OracleAnswer;
using testing::SortedCopy;

constexpr char kTriangle[] = "Q^bfb(x,y,z) = R(x,y), R(y,z), R(z,x)";

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

// --- deadline contract across families --------------------------------------

TEST_F(ChaosTest, ExpiredDeadlineFailsFastOnEveryFamily) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 6);
  auto parsed = ParseAdornedView(kTriangle);
  ASSERT_TRUE(parsed.ok());
  const AdornedView& view = parsed.value();
  // Tripartite ids (m=6): x=1 in A, z=13 in C — a non-empty answer set.
  const BoundValuation vb = {1, 13};

  constexpr RepKind kAllKinds[] = {RepKind::kCompressed, RepKind::kDecomposed,
                                   RepKind::kDirect, RepKind::kMaterialized};
  for (RepKind kind : kAllKinds) {
    SCOPED_TRACE(RepKindName(kind));
    RepBuildSpec spec;
    spec.kind = kind;
    spec.compressed.tau = 2.0;
    auto built = BuildAnswerRep(spec, view, db);
    ASSERT_TRUE(built.ok()) << built.status().message();
    const AnswerRep& rep = *built.value();

    // A request that arrives already expired does no enumeration work:
    // every entry point fails fast with the deadline code.
    RequestContext expired =
        RequestContext::WithDeadline(RequestContext::Clock::now());
    auto stream = rep.Answer(vb, &expired);
    ASSERT_FALSE(stream.ok());
    EXPECT_TRUE(stream.status().IsDeadlineExceeded());

    auto count = rep.Count(vb, &expired);
    ASSERT_FALSE(count.ok());
    EXPECT_TRUE(count.status().IsDeadlineExceeded());

    auto exists = rep.AnswerExists(vb, &expired);
    ASSERT_FALSE(exists.ok());
    EXPECT_TRUE(exists.status().IsDeadlineExceeded());

    auto agg = rep.AnswerAggregate(vb, {0}, AggSpec::Count(), &expired);
    ASSERT_FALSE(agg.ok());
    EXPECT_TRUE(agg.status().IsDeadlineExceeded());

    ParallelOptions popts;
    popts.num_threads = 2;
    auto par = rep.ParallelAnswer(vb, popts, &expired);
    ASSERT_FALSE(par.ok());
    EXPECT_TRUE(par.status().IsDeadlineExceeded());

    // Expiry mid-stream: the drain stops within one batch of the deadline
    // passing and the stream reports why. Cancel() stands in for the clock
    // so the test is deterministic.
    RequestContext live;
    auto open = rep.Answer(vb, &live);
    ASSERT_TRUE(open.ok());
    TupleEnumerator& e = *open.value();
    TupleBuffer batch(view.num_free());
    ASSERT_GT(e.NextBatch(&batch, 2), 0u);
    live.Cancel();
    batch.Clear();
    EXPECT_EQ(e.NextBatch(&batch, 2), 0u);
    EXPECT_TRUE(e.StreamStatus().IsCancelled());
  }
}

// --- degraded mode ----------------------------------------------------------

TEST_F(ChaosTest, DegradedAnswersAreByteIdenticalToThePlannedStructure) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 6);

  // Reference: the structure the planner actually wants, built cleanly.
  RepCache reference(&db);
  auto planned = reference.Get(kTriangle, 1.2);
  ASSERT_TRUE(planned.ok()) << planned.status().message();
  ASSERT_FALSE(planned.value()->degraded());

  // Same query, but the planned build fails once and the cache degrades.
  RepCache cache(&db);
  failpoint::Arm("build/any", {.probability = 1.0, .max_fires = 1});
  auto degraded = cache.Get(kTriangle, 1.2);
  ASSERT_TRUE(degraded.ok()) << degraded.status().message();
  ASSERT_TRUE(degraded.value()->degraded());

  // Byte-identical: same tuples in the same order, for hits and misses.
  auto parsed = ParseAdornedView(kTriangle);
  ASSERT_TRUE(parsed.ok());
  for (const BoundValuation& vb :
       testing::InterestingBoundValuations(parsed.value(), db)) {
    auto a = degraded.value()->rep().Answer(vb);
    auto b = planned.value()->rep().Answer(vb);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(CollectAll(*a.value()), CollectAll(*b.value()));
  }
}

// --- randomized sweeps ------------------------------------------------------

/// Drains a request end to end. Returns OK only if the stream finished
/// clean AND matched the oracle; a fault comes back as its Status, a
/// wrong answer as kError. Thread-safe (no gtest assertions): the sweep
/// calls this from worker threads.
Status DrainAndCheck(const CachedRep& entry, const AdornedView& view,
                     const Database& db, const BoundValuation& vb,
                     bool parallel) {
  ParallelOptions popts;
  popts.num_threads = 2;
  Result<std::unique_ptr<TupleEnumerator>> stream =
      parallel ? entry.rep().ParallelAnswer(vb, popts)
               : entry.rep().Answer(vb);
  if (!stream.ok()) return stream.status();
  std::vector<Tuple> got = CollectAll(*stream.value());
  if (Status s = stream.value()->StreamStatus(); !s.ok()) return s;
  // The stream finished clean: injected faults elsewhere in the process
  // must not have corrupted it.
  if (SortedCopy(std::move(got)) != OracleAnswer(view, db, vb))
    return Status::Error("answer mismatch vs oracle");
  return Status::Ok();
}

TEST_F(ChaosTest, RandomFailpointSweepUnderConcurrentReads) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 5);
  auto parsed = ParseAdornedView(kTriangle);
  ASSERT_TRUE(parsed.ok());
  const AdornedView& view = parsed.value();

  const char* kSites[] = {"build/any",       "build/compressed",
                          "build/decomposed", "build/direct",
                          "thread_pool/task", "parallel/produce"};

  for (uint64_t seed = 0; seed < 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    failpoint::DisarmAll();
    Rng rng(seed * 7919 + 13);
    // Arm a random pair of sites at partial probability: some requests
    // fail, some succeed, interleaved on the same structures.
    for (int i = 0; i < 2; ++i) {
      failpoint::Arm(kSites[rng.Uniform(std::size(kSites))],
                     {.probability = 0.3 + 0.4 * rng.NextDouble()});
    }

    RepCacheOptions options;
    options.max_build_attempts = 2;
    options.build_retry_backoff = std::chrono::milliseconds(1);
    options.negative_ttl = std::chrono::milliseconds(20);
    RepCache cache(&db, options);

    // No gtest assertions inside the workers (they are not thread-safe):
    // anomalies are counted and checked after the join.
    std::atomic<uint64_t> ok_ops{0}, failed_ops{0}, anomalies{0};
    auto worker = [&](uint64_t worker_seed) {
      Rng wrng(worker_seed);
      for (int op = 0; op < 20; ++op) {
        auto entry = cache.Get(kTriangle, 1.2);
        if (!entry.ok()) {
          // A fault must surface as a real error, not an empty success.
          if (entry.status().message().empty()) ++anomalies;
          ++failed_ops;
          // Negative-cache windows close on their own; let them.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          continue;
        }
        BoundValuation vb = {1 + wrng.Uniform(5), 11 + wrng.Uniform(5)};
        Status s = DrainAndCheck(*entry.value(), view, db, vb,
                                 wrng.Bernoulli(0.5));
        if (s.ok()) {
          ++ok_ops;
        } else if (s.IsUnavailable() || s.IsDeadlineExceeded() ||
                   s.IsCancelled()) {
          ++failed_ops;
        } else {
          ++anomalies;  // wrong answer, or a fault with the wrong code
        }
      }
    };
    {
      std::vector<std::thread> threads;
      for (int t = 0; t < 4; ++t)
        threads.emplace_back(worker, seed * 100 + t + 1);
      for (auto& t : threads) t.join();
    }
    EXPECT_EQ(anomalies.load(), 0u);

    // Recovery: with the faults gone (and the negative window expired) the
    // same cache serves clean.
    failpoint::DisarmAll();
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    auto entry = cache.Get(kTriangle, 1.2);
    ASSERT_TRUE(entry.ok()) << entry.status().message();
    EXPECT_TRUE(
        DrainAndCheck(*entry.value(), view, db, {1, 11}, false).ok());
  }
}

TEST_F(ChaosTest, MutationChaosNeverCorruptsServedAnswers) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 4);
  // Mirror of R maintained alongside the structure: an op lands in the
  // mirror iff the cache accepted it (ApplyDelta is all-or-nothing at the
  // injection boundary).
  std::set<Tuple> edges;
  {
    const Relation* r = db.Find("R");
    ASSERT_NE(r, nullptr);
    for (size_t row = 0; row < r->size(); ++row)
      edges.insert({r->At(row, 0), r->At(row, 1)});
  }

  RepCacheOptions options;
  options.planner.churn_per_request = 0.5;
  RepCache cache(&db, options);
  auto entry = cache.Get(kTriangle);
  ASSERT_TRUE(entry.ok()) << entry.status().message();
  ASSERT_TRUE(entry.value()->rep().capabilities().updatable);

  failpoint::Arm("rep_cache/apply_delta", {.probability = 0.3});
  failpoint::Arm("updatable/rebuild", {.probability = 0.3});

  Rng rng(99);
  uint64_t rejected = 0;
  for (int i = 0; i < 300; ++i) {
    UpdateOp op = [&] {
      if (!edges.empty() && rng.Bernoulli(0.4)) {
        auto it = edges.begin();
        std::advance(it, (long)rng.Uniform(edges.size()));
        return UpdateOp::Delete("R", Tuple(*it));
      }
      return UpdateOp::Insert(
          "R", {1 + rng.Uniform(12), 1 + rng.Uniform(12)});
    }();
    Status s = cache.ApplyDelta(entry.value()->key(), {op});
    if (!s.ok()) {
      EXPECT_TRUE(s.IsUnavailable()) << s.message();
      ++rejected;
      continue;  // all-or-nothing: the mirror must not move either
    }
    if (op.kind == UpdateOp::kInsert)
      edges.insert(op.tuple);
    else
      edges.erase(op.tuple);
  }
  EXPECT_GT(rejected, 0u);  // p=0.3 over 300 ops: the fault really fired
  cache.WaitForRebuilds();
  failpoint::DisarmAll();

  // Every served answer matches a from-scratch oracle over the mirror —
  // including if some background snapshot folds failed (the old snapshot
  // plus delta keeps serving) and after a final clean rebuild.
  Database mirror_db;
  AddRelation(mirror_db, "R", 2,
              std::vector<Tuple>(edges.begin(), edges.end()));
  auto parsed = ParseAdornedView(kTriangle);
  ASSERT_TRUE(parsed.ok());
  for (const BoundValuation& vb :
       testing::InterestingBoundValuations(parsed.value(), mirror_db)) {
    auto e = entry.value()->rep().Answer(vb);
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(SortedCopy(CollectAll(*e.value())),
              OracleAnswer(parsed.value(), mirror_db, vb));
  }
}

}  // namespace
}  // namespace cqc

// Differential suite for grouped ring aggregates (COUNT/SUM/MIN/MAX).
//
// The contract under test: AnswerRep::AnswerAggregate is value-identical
// across every representation family — pushed annotation walks (compressed,
// with tree annotations for free views and dictionary-entry annotations for
// bound views), the decomposed bag-product recurrence, the materialized
// columnar fold, the direct drain fallback — and against an independent
// oracle (naive join + map fold), for prefix and non-prefix group sets,
// under UpdatableRep churn (insert / delete / un-delete), and through a
// save -> load / save -> mmap round trip of the CQCREP05 annotation blocks.
//
// Also here: the Olteanu-Zavodny ring-recurrence pinning test referenced by
// docs/paper-map.md, the MaterializedView::CountAnswer bound-prefix
// coverage (non-empty bound valuations, range edges), and the Explain
// capability-tag pin.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/serialization.h"
#include "plan/answer_rep.h"
#include "plan/planner.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::AddRelation;
using testing::InterestingBoundValuations;
using testing::OracleAnswer;

/// Independent reference: fold the oracle's distinct answer tuples through
/// a map. Shares no code with GroupedDrainAggregate or the pushed walks.
AggregateResult NaiveAggregate(const std::vector<Tuple>& answers,
                               const std::vector<int>& group_vars,
                               const AggSpec& spec) {
  std::map<Tuple, AggCell> groups;
  for (const Tuple& t : answers) {
    Tuple key;
    for (int g : group_vars) key.push_back(t[(size_t)g]);
    AggCell& c = groups[key];
    if (spec.func == AggFunc::kCount)
      c.FoldCountOnly();
    else
      c.FoldValue(t[(size_t)spec.value_var]);
  }
  AggregateResult out;
  out.group_arity = (int)group_vars.size();
  for (const auto& [key, cell] : groups) {
    out.keys.insert(out.keys.end(), key.begin(), key.end());
    out.counts.push_back(cell.count);
    switch (spec.func) {
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
        out.values.push_back(cell.sum);
        break;
      case AggFunc::kMin:
        out.values.push_back(cell.min);
        break;
      case AggFunc::kMax:
        out.values.push_back(cell.max);
        break;
    }
  }
  return out;
}

std::unique_ptr<AnswerRep> MustBuild(RepKind kind, const AdornedView& view,
                                     const Database& db, double tau = 4.0) {
  RepBuildSpec spec;
  spec.kind = kind;
  spec.compressed.tau = tau;
  spec.compressed.build_aggregates = true;
  spec.updatable.rep.tau = tau;
  spec.updatable.rep.build_aggregates = true;
  auto rep = BuildAnswerRep(spec, view, db);
  CQC_CHECK(rep.ok()) << RepKindName(kind) << ": " << rep.status().message();
  return std::move(rep).value();
}

/// Group sets exercised per view: every lex prefix plus non-prefix sets
/// (which force the grouped-drain fallback even on annotated structures).
std::vector<std::vector<int>> GroupSets(int mu) {
  std::vector<std::vector<int>> out;
  for (int k = 0; k <= mu; ++k) {
    std::vector<int> prefix;
    for (int i = 0; i < k; ++i) prefix.push_back(i);
    out.push_back(std::move(prefix));
  }
  if (mu > 1) out.push_back({mu - 1});
  if (mu > 2) out.push_back({0, mu - 1});
  return out;
}

std::vector<AggSpec> AllSpecs(int mu) {
  std::vector<AggSpec> out = {AggSpec::Count(), AggSpec::Sum(0),
                              AggSpec::Min(0), AggSpec::Max(0)};
  if (mu > 1) {
    out.push_back(AggSpec::Sum(mu - 1));
    out.push_back(AggSpec::Min(mu - 1));
    out.push_back(AggSpec::Max(mu - 1));
  }
  return out;
}

/// Every family's AnswerAggregate vs the naive oracle, for every
/// interesting request x group set x spec.
void CheckAllFamilies(const AdornedView& view, const Database& db,
                      double tau = 4.0) {
  constexpr RepKind kKinds[] = {RepKind::kCompressed, RepKind::kDecomposed,
                                RepKind::kDirect, RepKind::kMaterialized};
  std::vector<std::unique_ptr<AnswerRep>> reps;
  for (RepKind kind : kKinds) reps.push_back(MustBuild(kind, view, db, tau));
  const int mu = view.num_free();
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    const std::vector<Tuple> oracle = OracleAnswer(view, db, vb);
    for (const std::vector<int>& gv : GroupSets(mu)) {
      for (const AggSpec& spec : AllSpecs(mu)) {
        const AggregateResult want = NaiveAggregate(oracle, gv, spec);
        for (const auto& rep : reps) {
          auto got = rep->AnswerAggregate(vb, gv, spec);
          ASSERT_TRUE(got.ok()) << got.status().message();
          EXPECT_EQ(got.value(), want)
              << RepKindName(rep->kind()) << " " << AggFuncName(spec.func)
              << " k=" << gv.size();
        }
      }
    }
  }
}

// --- full-free views: tree-mode annotations --------------------------------

TEST(AggregateDifferential, Path2FreeView) {
  Database db;
  MakePathRelations(db, "R", 2, 30, 120, 7);
  const AdornedView view = PathView(2, "fff");
  // Annotations must actually be present (the pushed path is live, not the
  // fallback masquerading as it).
  auto rep = MustBuild(RepKind::kCompressed, view, db);
  EXPECT_TRUE(rep->capabilities().aggregates);
  EXPECT_TRUE(static_cast<const CompressedAnswerRep&>(*rep)
                  .underlying()
                  .has_aggregates());
  CheckAllFamilies(view, db);
}

TEST(AggregateDifferential, TriangleFreeView) {
  Database db;
  MakeRandomGraph(db, "R", 18, 90, /*symmetric=*/true, 11);
  CheckAllFamilies(TriangleView("fff"), db);
}

// --- bound views: dictionary-entry annotations -----------------------------

TEST(AggregateDifferential, StarBoundView) {
  Database db;
  // Small domains force shared z-lists, so heavy (x1,x2) pairs exist and
  // the dictionary carries annotated entries at tau = 2.
  MakeRandomRelation(db, "R1", {8, 20}, 80, 3);
  MakeRandomRelation(db, "R2", {8, 20}, 80, 4);
  CheckAllFamilies(StarView(2), db, /*tau=*/2.0);
}

TEST(AggregateDifferential, RunningExampleBoundView) {
  Database db;
  MakeRandomRelation(db, "R1", {6, 10, 10}, 70, 21);
  MakeRandomRelation(db, "R2", {6, 10, 10}, 70, 22);
  MakeRandomRelation(db, "R3", {6, 10, 10}, 70, 23);
  CheckAllFamilies(RunningExampleView(), db, /*tau=*/2.0);
}

// --- randomized sweep ------------------------------------------------------

TEST(AggregateDifferential, RandomizedSweep) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Database db;
    MakePathRelations(db, "R", 2, 20 + 5 * seed, 80 + 20 * seed, seed);
    CheckAllFamilies(PathView(2, "fff"), db, /*tau=*/1 + (double)seed);
  }
}

// --- churn: UpdatableRep insert / delete / un-delete -----------------------

TEST(AggregateUnderChurn, InsertDeleteUndelete) {
  const AdornedView view = PathView(2, "fff");
  Database db;
  MakePathRelations(db, "R", 2, 20, 60, 17);

  // Mirror of the current data, for rebuilding the oracle database after
  // every script step.
  std::map<std::string, std::set<Tuple>> mirror;
  for (const std::string& name : {"R1", "R2"}) {
    const Relation* r = db.Find(name);
    ASSERT_NE(r, nullptr);
    for (size_t i = 0; i < r->size(); ++i) {
      Tuple t;
      for (int c = 0; c < r->arity(); ++c) t.push_back(r->At(i, c));
      mirror[name].insert(std::move(t));
    }
  }

  RepBuildSpec spec;
  spec.kind = RepKind::kUpdatable;
  spec.updatable.rep.tau = 3.0;
  spec.updatable.rep.build_aggregates = true;
  spec.updatable.rebuild_fraction = 1e9;  // script drives Rebuild explicitly
  auto built = BuildAnswerRep(spec, view, db);
  ASSERT_TRUE(built.ok()) << built.status().message();
  std::unique_ptr<AnswerRep> rep = std::move(built).value();
  EXPECT_TRUE(rep->capabilities().aggregates);

  auto check = [&]() {
    Database current;
    for (const auto& [name, rows] : mirror)
      AddRelation(current, name, 2,
                  std::vector<Tuple>(rows.begin(), rows.end()));
    const std::vector<Tuple> oracle = OracleAnswer(view, current, {});
    for (const std::vector<int>& gv : GroupSets(3)) {
      for (const AggSpec& aspec :
           {AggSpec::Count(), AggSpec::Sum(2), AggSpec::Min(1)}) {
        auto got = rep->AnswerAggregate({}, gv, aspec);
        ASSERT_TRUE(got.ok()) << got.status().message();
        EXPECT_EQ(got.value(), NaiveAggregate(oracle, gv, aspec));
      }
    }
  };
  auto apply = [&](const UpdateBatch& batch) {
    for (const UpdateOp& op : batch) {
      if (op.kind == UpdateOp::kInsert)
        mirror[op.relation].insert(op.tuple);
      else
        mirror[op.relation].erase(op.tuple);
    }
    ASSERT_TRUE(rep->ApplyDelta(batch).ok());
  };

  check();  // clean epoch: pushed through the annotated snapshot

  // Inserts that create new answers.
  apply({UpdateOp::Insert("R1", {100, 101}), UpdateOp::Insert("R2", {101, 102}),
         UpdateOp::Insert("R2", {101, 103})});
  check();

  // Delete an original tuple (tombstone filtering of snapshot answers).
  const Tuple victim = *mirror["R2"].begin();
  apply({UpdateOp::Delete("R2", victim)});
  check();

  // Un-delete: the tombstone must cancel exactly.
  apply({UpdateOp::Insert("R2", victim)});
  check();

  // Insert-then-delete nets to nothing.
  apply({UpdateOp::Insert("R1", {200, 201}), UpdateOp::Delete("R1", {200, 201})});
  check();

  // Rebuild folds the delta and re-derives annotations: the clean epoch
  // must answer pushed again, with identical values.
  auto* up = static_cast<UpdatableAnswerRep*>(rep.get());
  ASSERT_TRUE(up->Rebuild().ok());
  EXPECT_TRUE(up->underlying().rep().has_aggregates());
  check();
}

// --- serialization round trip ----------------------------------------------

TEST(AggregateSerialization, TreeAnnotationsSurviveRoundTrip) {
  const AdornedView view = PathView(2, "fff");
  Database db;
  MakePathRelations(db, "R", 2, 25, 90, 29);
  CompressedRepOptions opt;
  opt.tau = 3.0;
  opt.build_aggregates = true;
  auto built = CompressedRep::Build(view, db, opt);
  ASSERT_TRUE(built.ok());
  std::unique_ptr<CompressedRep> orig = std::move(built).value();
  ASSERT_TRUE(orig->has_aggregates());

  const std::string path = ::testing::TempDir() + "/agg_tree.cqcrep";
  ASSERT_TRUE(SaveCompressedRep(*orig, path).ok());

  for (bool mmap : {false, true}) {
    auto loaded = mmap ? MmapCompressedRep(view, db, path)
                       : LoadCompressedRep(view, db, path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    EXPECT_TRUE(loaded.value()->has_aggregates());
    EXPECT_EQ(loaded.value()->stats().agg_bytes, orig->stats().agg_bytes);
    for (const std::vector<int>& gv : GroupSets(3)) {
      for (const AggSpec& spec : AllSpecs(3)) {
        EXPECT_EQ(loaded.value()->AnswerAggregate({}, gv, spec),
                  orig->AnswerAggregate({}, gv, spec))
            << (mmap ? "mmap" : "load") << " " << AggFuncName(spec.func);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(AggregateSerialization, DictionaryAnnotationsSurviveRoundTrip) {
  const AdornedView view = StarView(2);
  Database db;
  MakeRandomRelation(db, "R1", {8, 20}, 80, 3);
  MakeRandomRelation(db, "R2", {8, 20}, 80, 4);
  CompressedRepOptions opt;
  opt.tau = 2.0;
  opt.build_aggregates = true;
  auto built = CompressedRep::Build(view, db, opt);
  ASSERT_TRUE(built.ok());
  std::unique_ptr<CompressedRep> orig = std::move(built).value();

  const std::string path = ::testing::TempDir() + "/agg_dict.cqcrep";
  ASSERT_TRUE(SaveCompressedRep(*orig, path).ok());
  const std::vector<BoundValuation> requests =
      InterestingBoundValuations(view, db);

  for (bool mmap : {false, true}) {
    auto loaded = mmap ? MmapCompressedRep(view, db, path)
                       : LoadCompressedRep(view, db, path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    EXPECT_EQ(loaded.value()->has_aggregates(), orig->has_aggregates());
    for (const BoundValuation& vb : requests) {
      for (const AggSpec& spec : AllSpecs(1)) {
        EXPECT_EQ(loaded.value()->AnswerAggregate(vb, {}, spec),
                  orig->AnswerAggregate(vb, {}, spec));
        EXPECT_EQ(loaded.value()->AnswerAggregate(vb, {0}, spec),
                  orig->AnswerAggregate(vb, {0}, spec));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(AggregateSerialization, UnannotatedFileLoadsWithoutAggregates) {
  const AdornedView view = PathView(2, "fff");
  Database db;
  MakePathRelations(db, "R", 2, 20, 60, 31);
  auto built = CompressedRep::Build(view, db, {});  // no annotations
  ASSERT_TRUE(built.ok());
  ASSERT_FALSE(built.value()->has_aggregates());

  const std::string path = ::testing::TempDir() + "/agg_none.cqcrep";
  ASSERT_TRUE(SaveCompressedRep(*built.value(), path).ok());
  auto loaded = LoadCompressedRep(view, db, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_FALSE(loaded.value()->has_aggregates());
  // The drain fallback still answers correctly.
  const std::vector<Tuple> oracle = OracleAnswer(view, db, {});
  EXPECT_EQ(loaded.value()->AnswerAggregate({}, {0}, AggSpec::Sum(2)),
            NaiveAggregate(oracle, {0}, AggSpec::Sum(2)));
  std::remove(path.c_str());
}

TEST(AggregateSerialization, OldMagicRejected) {
  const AdornedView view = PathView(2, "fff");
  Database db;
  MakePathRelations(db, "R", 2, 15, 40, 37);
  auto built = CompressedRep::Build(view, db, {});
  ASSERT_TRUE(built.ok());
  const std::string path = ::testing::TempDir() + "/agg_v04.cqcrep";
  ASSERT_TRUE(SaveCompressedRep(*built.value(), path).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 7, SEEK_SET);  // version digit of "CQCREP05"
    std::fputc('4', f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadCompressedRep(view, db, path).ok());
  EXPECT_FALSE(MmapCompressedRep(view, db, path).ok());
  std::remove(path.c_str());
}

// --- satellite: MaterializedView::CountAnswer with non-empty bounds --------

TEST(MaterializedViewCount, BoundPrefixCountMatchesOracle) {
  const AdornedView view = StarView(2);
  Database db;
  MakeRandomRelation(db, "R1", {6, 15}, 60, 41);
  MakeRandomRelation(db, "R2", {6, 15}, 60, 42);
  auto built = MaterializedView::Build(view, db);
  ASSERT_TRUE(built.ok());
  const MaterializedView& mv = *built.value();
  size_t nonempty = 0;
  for (const BoundValuation& vb : InterestingBoundValuations(view, db)) {
    const size_t want = OracleAnswer(view, db, vb).size();
    EXPECT_EQ(mv.CountAnswer(vb), want)
        << "vb = (" << vb[0] << "," << vb[1] << ")";
    if (want > 0) ++nonempty;
  }
  // The suite's point: the O(log) bound-prefix refinement must be hit with
  // bounds that actually select rows, not just misses.
  EXPECT_GT(nonempty, 0u);

  // Range edges: below every stored value, above every stored value, and
  // a first-column match with a second-column miss.
  EXPECT_EQ(mv.CountAnswer({0, 0}), OracleAnswer(view, db, {0, 0}).size());
  EXPECT_EQ(mv.CountAnswer({kTop, kTop}),
            OracleAnswer(view, db, {kTop, kTop}).size());
  EXPECT_EQ(mv.CountAnswer({1, 0}), OracleAnswer(view, db, {1, 0}).size());
}

// --- pinning: the Olteanu-Zavodny ring-aggregate recurrence ----------------
// docs/paper-map.md points here: grouped aggregates fold the commutative
// ring (count, sum, min, max) bottom-up — annotation cells merge
// associatively (DelayBalancedTree / HeavyDictionary annotations), and
// independent factors combine by the product rule (DecomposedRep bags).

TEST(OlteanuZavodnyRing, CellMergeIsAssociativeAndOrderFree) {
  Rng rng(5);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 64; ++i)
    tuples.push_back({rng.Uniform(100), rng.Uniform(100), rng.Uniform(100)});

  RingCell all;
  all.Reset(3);
  for (const Tuple& t : tuples) all.FoldTuple(t);
  // Any split point gives the same merged cell (the tree stores exactly
  // these partial folds per subtree).
  for (size_t split : {(size_t)1, tuples.size() / 2, tuples.size() - 1}) {
    RingCell lo, hi;
    lo.Reset(3);
    hi.Reset(3);
    for (size_t i = 0; i < split; ++i) lo.FoldTuple(tuples[i]);
    for (size_t i = split; i < tuples.size(); ++i) hi.FoldTuple(tuples[i]);
    lo.Merge(hi);
    EXPECT_EQ(lo.count, all.count);
    EXPECT_EQ(lo.vals, all.vals);
  }
}

TEST(OlteanuZavodnyRing, DecomposedProductRecurrencePinned) {
  // Q^fff(x,y,z) = R1(x,y), R2(y,z) over hand-computable data:
  //   answers: (1,5,100), (2,5,100), (1,6,200).
  Database db;
  AddRelation(db, "R1", 2, {{1, 5}, {2, 5}, {1, 6}});
  AddRelation(db, "R2", 2, {{5, 100}, {6, 200}});
  const AdornedView view = PathView(2, "fff");

  for (RepKind kind : {RepKind::kCompressed, RepKind::kDecomposed}) {
    auto rep = MustBuild(kind, view, db, /*tau=*/1.0);
    auto count = rep->AnswerAggregate({}, {}, AggSpec::Count());
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count.value().counts, std::vector<uint64_t>{3});
    auto sum_z = rep->AnswerAggregate({}, {}, AggSpec::Sum(2));
    ASSERT_TRUE(sum_z.ok());
    EXPECT_EQ(sum_z.value().values, std::vector<Value>{400});
    auto min_x = rep->AnswerAggregate({}, {}, AggSpec::Min(0));
    ASSERT_TRUE(min_x.ok());
    EXPECT_EQ(min_x.value().values, std::vector<Value>{1});
    auto max_z = rep->AnswerAggregate({}, {}, AggSpec::Max(2));
    ASSERT_TRUE(max_z.ok());
    EXPECT_EQ(max_z.value().values, std::vector<Value>{200});
    // Grouped by x: x=1 -> {count 2, sum z 300}, x=2 -> {count 1, sum 100}.
    auto grouped = rep->AnswerAggregate({}, {0}, AggSpec::Sum(2));
    ASSERT_TRUE(grouped.ok());
    EXPECT_EQ(grouped.value().keys, (std::vector<Value>{1, 2}));
    EXPECT_EQ(grouped.value().counts, (std::vector<uint64_t>{2, 1}));
    EXPECT_EQ(grouped.value().values, (std::vector<Value>{300, 100}));
  }
}

// --- satellite: Explain prints the full capability tag set -----------------

TEST(PlannerAggregates, ExplainShowsCapabilityTagsAndPricing) {
  Database db;
  MakeRandomRelation(db, "R1", {8, 20}, 80, 3);
  MakeRandomRelation(db, "R2", {8, 20}, 80, 4);
  Planner planner(&db);
  PlannerOptions opt;
  opt.aggregate_fraction = 0.5;
  auto plan = planner.PlanView(StarView(2), opt);
  ASSERT_TRUE(plan.ok()) << plan.status().message();

  const std::string explain = plan.value().Explain();
  EXPECT_NE(explain.find("aggregates:"), std::string::npos) << explain;
  // Every scored candidate row carries its bracketed tag set; the
  // materialized candidate must show `count` (the tag Explain used to
  // omit) and `agg`.
  EXPECT_NE(explain.find("[lex,count,agg]"), std::string::npos) << explain;

  bool saw_compressed = false, saw_materialized = false;
  for (const PlanCandidate& c : plan.value().candidates) {
    if (c.kind == RepKind::kCompressed) {
      saw_compressed = true;
      EXPECT_TRUE(c.caps.aggregates);  // annotations priced into the build
    }
    if (c.kind == RepKind::kMaterialized) {
      saw_materialized = true;
      EXPECT_TRUE(c.caps.counting);
      EXPECT_TRUE(c.caps.aggregates);
    }
  }
  EXPECT_TRUE(saw_compressed);
  EXPECT_TRUE(saw_materialized);

  // The chosen spec builds annotations when the mix prices them.
  if (plan.value().kind() == RepKind::kCompressed)
    EXPECT_TRUE(plan.value().spec.compressed.build_aggregates);
}

// --- hardened entry validation ---------------------------------------------

TEST(AggregateValidation, MalformedRequestsReturnErrors) {
  Database db;
  MakePathRelations(db, "R", 2, 15, 40, 3);
  auto rep = MustBuild(RepKind::kCompressed, PathView(2, "fff"), db);

  EXPECT_FALSE(rep->AnswerAggregate({1}, {}, AggSpec::Count()).ok())
      << "wrong bound arity";
  EXPECT_FALSE(rep->AnswerAggregate({}, {1, 0}, AggSpec::Count()).ok())
      << "descending group vars";
  EXPECT_FALSE(rep->AnswerAggregate({}, {0, 0}, AggSpec::Count()).ok())
      << "duplicate group vars";
  EXPECT_FALSE(rep->AnswerAggregate({}, {3}, AggSpec::Count()).ok())
      << "group var out of range";
  EXPECT_FALSE(rep->AnswerAggregate({}, {}, AggSpec::Sum(7)).ok())
      << "value var out of range";
  EXPECT_FALSE(rep->AnswerAggregate({}, {}, AggSpec::Sum(-1)).ok())
      << "missing value var";
}

}  // namespace
}  // namespace cqc

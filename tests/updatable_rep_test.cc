// Insert+delete maintenance (§8 extension): answers over snapshot + signed
// delta always match the oracle on the *current* data; tombstones filter
// snapshot answers; rebuilds fire at the configured pending-mass threshold
// and rebase concurrent ops. See docs/update-semantics.md.
#include <gtest/gtest.h>

#include "core/updatable_rep.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::AddRelation;
using testing::InterestingBoundValuations;
using testing::OracleAnswer;
using testing::SortedCopy;

// Replays the current state of an UpdatableRep's inputs into a plain
// database for the oracle.
Database Snapshot(const Database& original,
                  const std::map<std::string, std::vector<Tuple>>& inserts) {
  Database out;
  for (const Relation* r : original.AllRelations()) {
    Relation* dst = out.AddRelation(r->name(), r->arity());
    Tuple row(r->arity());
    for (size_t i = 0; i < r->size(); ++i) {
      for (int c = 0; c < r->arity(); ++c) row[c] = r->At(i, c);
      dst->Insert(row);
    }
    auto it = inserts.find(r->name());
    if (it != inserts.end())
      for (const Tuple& t : it->second) dst->Insert(t);
    dst->Seal();
  }
  return out;
}

void CheckAgainstOracle(const UpdatableRep& rep, const AdornedView& view,
                        const Database& current) {
  for (const BoundValuation& vb :
       InterestingBoundValuations(view, current)) {
    std::vector<Tuple> got = CollectAll(*rep.Answer(vb));
    std::vector<Tuple> sorted = SortedCopy(got);
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << "duplicates emitted";
    EXPECT_EQ(sorted, OracleAnswer(view, current, vb));
  }
}

TEST(UpdatableRepTest, TriangleInsertsMatchOracle) {
  Database db;
  MakeRandomGraph(db, "R", 10, 40, true, 3);
  AdornedView view = TriangleView("bfb");
  UpdatableRepOptions opt;
  opt.rep.tau = 2.0;
  opt.rebuild_fraction = 1e9;  // never auto-rebuild in this test
  auto rep = UpdatableRep::Build(view, db, opt);
  ASSERT_TRUE(rep.ok()) << rep.status().message();

  std::map<std::string, std::vector<Tuple>> inserted;
  Rng rng(17);
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 5; ++i) {
      Value a = rng.UniformRange(1, 10), b = rng.UniformRange(1, 10);
      if (a == b) continue;
      ASSERT_TRUE(rep.value()->Insert("R", {a, b}).ok());
      ASSERT_TRUE(rep.value()->Insert("R", {b, a}).ok());
      inserted["R"].push_back({a, b});
      inserted["R"].push_back({b, a});
    }
    Database current = Snapshot(db, inserted);
    CheckAgainstOracle(*rep.value(), view, current);
  }
  EXPECT_EQ(rep.value()->num_rebuilds(), 0);
}

TEST(UpdatableRepTest, AutoRebuildTriggers) {
  Database db;
  MakeRandomGraph(db, "R", 12, 60, false, 5);
  auto view = ParseAdornedView("Q^bf(x,y) = R(x,y)");
  ASSERT_TRUE(view.ok());
  UpdatableRepOptions opt;
  opt.rep.tau = 4.0;
  opt.rebuild_fraction = 0.10;  // rebuild after ~6 inserts
  auto rep = UpdatableRep::Build(view.value(), db, opt);
  ASSERT_TRUE(rep.ok());
  for (int i = 0; i < 30; ++i)
    ASSERT_TRUE(rep.value()->Insert("R", {100 + (Value)i, 1}).ok());
  EXPECT_GT(rep.value()->num_rebuilds(), 0);
  // Most of the inserts were folded into the snapshot; the sub-threshold
  // tail may remain pending.
  EXPECT_LT(rep.value()->pending_inserts(), 30u);
  EXPECT_GT(rep.value()->snapshot_tuples(), 60u);
  // Answers reflect everything regardless of where it currently lives.
  auto got = SortedCopy(CollectAll(*rep.value()->Answer({105})));
  EXPECT_EQ(got, (std::vector<Tuple>{{1}}));
}

TEST(UpdatableRepTest, NewDerivationsNeedDeltaTuples) {
  // A triangle completed only by an inserted edge must appear; one already
  // complete must not be duplicated.
  Database db;
  Relation* r = db.AddRelation("R", 2);
  auto edge = [&](Value a, Value b) {
    r->Insert({a, b});
    r->Insert({b, a});
  };
  edge(1, 2);
  edge(2, 3);  // triangle 1-2-3 missing edge (3,1)
  edge(4, 5);
  edge(5, 6);
  edge(6, 4);  // complete triangle 4-5-6
  r->Seal();
  AdornedView view = TriangleView("bfb");
  UpdatableRepOptions opt;
  opt.rep.tau = 1.0;
  opt.rebuild_fraction = 1e9;
  auto rep = UpdatableRep::Build(view, db, opt);
  ASSERT_TRUE(rep.ok());

  EXPECT_TRUE(CollectAll(*rep.value()->Answer({1, 3})).empty());
  ASSERT_TRUE(rep.value()->Insert("R", {3, 1}).ok());
  ASSERT_TRUE(rep.value()->Insert("R", {1, 3}).ok());
  EXPECT_EQ(SortedCopy(CollectAll(*rep.value()->Answer({1, 3}))),
            (std::vector<Tuple>{{2}}));
  // The old triangle is reported exactly once.
  EXPECT_EQ(SortedCopy(CollectAll(*rep.value()->Answer({4, 6}))),
            (std::vector<Tuple>{{5}}));
}

TEST(UpdatableRepTest, DuplicateInsertsAreHarmless) {
  Database db;
  AddRelation(db, "R", 2, {{1, 2}, {2, 3}});
  auto view = ParseAdornedView("Q^bf(x,y) = R(x,y)");
  ASSERT_TRUE(view.ok());
  UpdatableRepOptions opt;
  opt.rebuild_fraction = 1e9;
  auto rep = UpdatableRep::Build(view.value(), db, opt);
  ASSERT_TRUE(rep.ok());
  ASSERT_TRUE(rep.value()->Insert("R", {1, 2}).ok());  // already present
  ASSERT_TRUE(rep.value()->Insert("R", {1, 5}).ok());
  ASSERT_TRUE(rep.value()->Insert("R", {1, 5}).ok());  // duplicate delta
  EXPECT_EQ(SortedCopy(CollectAll(*rep.value()->Answer({1}))),
            (std::vector<Tuple>{{2}, {5}}));
}

TEST(UpdatableRepTest, InsertValidation) {
  Database db;
  AddRelation(db, "R", 2, {{1, 2}});
  auto view = ParseAdornedView("Q^bf(x,y) = R(x,y)");
  ASSERT_TRUE(view.ok());
  UpdatableRepOptions opt;
  auto rep = UpdatableRep::Build(view.value(), db, opt);
  ASSERT_TRUE(rep.ok());
  EXPECT_FALSE(rep.value()->Insert("S", {1, 2}).ok());
  EXPECT_FALSE(rep.value()->Insert("R", {1, 2, 3}).ok());
}

TEST(UpdatableRepTest, DeletionsFilterSnapshotAnswers) {
  // Deleting an edge of a snapshot triangle must remove the answer without
  // a rebuild (tombstone filter); re-inserting restores it.
  Database db;
  Relation* r = db.AddRelation("R", 2);
  auto edge = [&](Value a, Value b) {
    r->Insert({a, b});
    r->Insert({b, a});
  };
  edge(1, 2);
  edge(2, 3);
  edge(3, 1);  // complete triangle 1-2-3
  edge(1, 4);
  edge(4, 3);  // second witness 1-4-3
  r->Seal();
  AdornedView view = TriangleView("bfb");
  UpdatableRepOptions opt;
  opt.rep.tau = 1.0;
  opt.rebuild_fraction = 1e9;
  auto rep = UpdatableRep::Build(view, db, opt);
  ASSERT_TRUE(rep.ok());

  EXPECT_EQ(SortedCopy(CollectAll(*rep.value()->Answer({1, 3}))),
            (std::vector<Tuple>{{2}, {4}}));
  ASSERT_TRUE(rep.value()->Delete("R", {2, 3}).ok());
  EXPECT_EQ(SortedCopy(CollectAll(*rep.value()->Answer({1, 3}))),
            (std::vector<Tuple>{{4}}));
  EXPECT_EQ(rep.value()->pending_deletes(), 1u);
  EXPECT_EQ(rep.value()->num_rebuilds(), 0);
  // Un-delete: the tombstone cancels instead of stacking a pending insert.
  ASSERT_TRUE(rep.value()->Insert("R", {2, 3}).ok());
  EXPECT_EQ(rep.value()->pending_deletes(), 0u);
  EXPECT_EQ(rep.value()->pending_inserts(), 0u);
  EXPECT_EQ(SortedCopy(CollectAll(*rep.value()->Answer({1, 3}))),
            (std::vector<Tuple>{{2}, {4}}));
}

TEST(UpdatableRepTest, DeleteOfPendingInsertCancels) {
  Database db;
  AddRelation(db, "R", 2, {{1, 2}});
  auto view = ParseAdornedView("Q^bf(x,y) = R(x,y)");
  ASSERT_TRUE(view.ok());
  UpdatableRepOptions opt;
  opt.rebuild_fraction = 1e9;
  auto rep = UpdatableRep::Build(view.value(), db, opt);
  ASSERT_TRUE(rep.ok());
  ASSERT_TRUE(rep.value()->Insert("R", {1, 5}).ok());
  EXPECT_EQ(rep.value()->pending_inserts(), 1u);
  ASSERT_TRUE(rep.value()->Delete("R", {1, 5}).ok());
  EXPECT_EQ(rep.value()->pending_inserts(), 0u);
  EXPECT_EQ(rep.value()->pending_deletes(), 0u);
  EXPECT_EQ(SortedCopy(CollectAll(*rep.value()->Answer({1}))),
            (std::vector<Tuple>{{2}}));
  // Deleting an absent tuple is a no-op, not an error.
  ASSERT_TRUE(rep.value()->Delete("R", {9, 9}).ok());
  EXPECT_EQ(rep.value()->pending_deletes(), 0u);
}

TEST(UpdatableRepTest, TombstoneMassTriggersRebuild) {
  Database db;
  std::vector<Tuple> rows;
  for (Value i = 1; i <= 40; ++i) rows.push_back({i, i + 100});
  AddRelation(db, "R", 2, rows);
  auto view = ParseAdornedView("Q^bf(x,y) = R(x,y)");
  ASSERT_TRUE(view.ok());
  UpdatableRepOptions opt;
  opt.rebuild_fraction = 0.10;  // rebuild after ~4 pending ops
  auto rep = UpdatableRep::Build(view.value(), db, opt);
  ASSERT_TRUE(rep.ok());
  for (Value i = 1; i <= 10; ++i)
    ASSERT_TRUE(rep.value()->Delete("R", {i, i + 100}).ok());
  EXPECT_GT(rep.value()->num_rebuilds(), 0);
  EXPECT_LT(rep.value()->snapshot_tuples(), 40u);
  EXPECT_TRUE(CollectAll(*rep.value()->Answer({1})).empty());
  EXPECT_EQ(SortedCopy(CollectAll(*rep.value()->Answer({11}))),
            (std::vector<Tuple>{{111}}));
}

TEST(UpdatableRepTest, ValidationRejectsBadOps) {
  Database db;
  AddRelation(db, "R", 2, {{1, 2}});
  auto view = ParseAdornedView("Q^bf(x,y) = R(x,y)");
  ASSERT_TRUE(view.ok());
  UpdatableRepOptions opt;
  auto rep = UpdatableRep::Build(view.value(), db, opt);
  ASSERT_TRUE(rep.ok());
  EXPECT_FALSE(rep.value()->Delete("S", {1, 2}).ok());
  EXPECT_FALSE(rep.value()->Delete("R", {1}).ok());
  // A batch with one bad op is rejected atomically: the good op must not
  // have been applied.
  UpdateBatch batch{UpdateOp::Insert("R", {7, 8}),
                    UpdateOp::Delete("R", {1, 2, 3})};
  EXPECT_FALSE(rep.value()->Apply(batch).ok());
  EXPECT_EQ(rep.value()->pending_inserts(), 0u);
}

TEST(UpdatableRepTest, MixedScriptMatchesOracleAndScratchRebuild) {
  // A random insert/delete script; at checkpoints the structure must agree
  // with the naive oracle on the current data, the stream must have a lex-
  // sorted prefix (the surviving snapshot answers) followed by the delta
  // answers, and at the end a from-scratch rebuild must agree too.
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    Database db;
    MakeRandomGraph(db, "R", 10, 40, true, seed * 7);
    AdornedView view = TriangleView("bfb");
    UpdatableRepOptions opt;
    opt.rep.tau = 2.0;
    opt.rebuild_fraction = 0.35;
    auto rep = UpdatableRep::Build(view, db, opt);
    ASSERT_TRUE(rep.ok());

    // Mirror of the current data, replayed alongside the structure.
    std::set<Tuple> current;
    {
      const Relation* r = db.Find("R");
      Tuple row(2);
      for (size_t i = 0; i < r->size(); ++i) {
        row[0] = r->At(i, 0);
        row[1] = r->At(i, 1);
        current.insert(row);
      }
    }
    Rng rng(seed);
    for (int i = 0; i < 300; ++i) {
      Tuple t{rng.UniformRange(1, 10), rng.UniformRange(1, 10)};
      if (t[0] == t[1]) continue;
      if (rng.Uniform(3) == 0) {
        ASSERT_TRUE(rep.value()->Delete("R", t).ok());
        current.erase(t);
      } else {
        ASSERT_TRUE(rep.value()->Insert("R", t).ok());
        current.insert(t);
      }
      if (i % 60 != 59) continue;
      Database now;
      AddRelation(now, "R", 2,
                  std::vector<Tuple>(current.begin(), current.end()));
      // Snapshot-part answers (surviving base answers) must form a strictly
      // lex-sorted prefix of the stream.
      const Database& base = rep.value()->snapshot_base();
      for (const BoundValuation& vb :
           InterestingBoundValuations(view, now)) {
        std::vector<Tuple> got = CollectAll(*rep.value()->Answer(vb));
        std::vector<Tuple> oracle_base = OracleAnswer(view, base, vb);
        std::vector<Tuple> oracle_now = OracleAnswer(view, now, vb);
        std::set<Tuple> now_set(oracle_now.begin(), oracle_now.end());
        size_t prefix = 0;
        for (const Tuple& t2 : oracle_base)
          if (now_set.count(t2) > 0) ++prefix;
        ASSERT_LE(prefix, got.size());
        std::vector<Tuple> head(got.begin(), got.begin() + prefix);
        EXPECT_TRUE(testing::IsStrictlySortedLex(head));
        EXPECT_EQ(SortedCopy(got), oracle_now);
      }
    }
    // From-scratch rebuild on the final data agrees with the maintained
    // structure everywhere.
    ASSERT_TRUE(rep.value()->Rebuild().ok());
    Database final_db;
    AddRelation(final_db, "R", 2,
                std::vector<Tuple>(current.begin(), current.end()));
    for (const BoundValuation& vb :
         InterestingBoundValuations(view, final_db)) {
      EXPECT_EQ(SortedCopy(CollectAll(*rep.value()->Answer(vb))),
                OracleAnswer(view, final_db, vb));
    }
    EXPECT_EQ(rep.value()->snapshot_tuples(), current.size());
  }
}

TEST(UpdatableRepTest, StarJoinRandomizedSweep) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Database db;
    for (int i = 1; i <= 3; ++i)
      MakeRandomGraph(db, "R" + std::to_string(i), 8, 25, false,
                      seed * 100 + i);
    AdornedView view = StarView(3);
    UpdatableRepOptions opt;
    opt.rep.tau = 3.0;
    opt.rebuild_fraction = 0.3;
    auto rep = UpdatableRep::Build(view, db, opt);
    ASSERT_TRUE(rep.ok());
    std::map<std::string, std::vector<Tuple>> inserted;
    Rng rng(seed);
    for (int i = 0; i < 25; ++i) {
      std::string rel = "R" + std::to_string(1 + rng.Uniform(3));
      Tuple t{rng.UniformRange(1, 8), rng.UniformRange(1, 8)};
      ASSERT_TRUE(rep.value()->Insert(rel, t).ok());
      inserted[rel].push_back(t);
      if (i % 8 == 0) {
        Database current = Snapshot(db, inserted);
        CheckAgainstOracle(*rep.value(), view, current);
      }
    }
    Database current = Snapshot(db, inserted);
    CheckAgainstOracle(*rep.value(), view, current);
  }
}

}  // namespace
}  // namespace cqc

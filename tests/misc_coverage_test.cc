// Odds and ends: surfaces not covered by the focused suites.
#include <gtest/gtest.h>

#include <cmath>

#include "core/compressed_rep.h"
#include "decomposition/connex_builder.h"
#include "query/parser.h"
#include "relational/database.h"
#include "tests/test_util.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::AddRelation;

TEST(RelationHashTest, ContentHashIdentifiesTupleSets) {
  Database db;
  Relation* a = AddRelation(db, "A", 2, {{1, 2}, {3, 4}});
  Relation* b = AddRelation(db, "B", 2, {{3, 4}, {1, 2}});  // same set
  Relation* c = AddRelation(db, "C", 2, {{1, 2}, {3, 5}});
  EXPECT_EQ(a->ContentHash(), b->ContentHash());
  EXPECT_NE(a->ContentHash(), c->ContentHash());
}

TEST(RelationHashTest, ArityAffectsHash) {
  Database db;
  Relation* a = AddRelation(db, "A", 1, {{1}, {2}});
  Relation* b = AddRelation(db, "B", 2, {{1, 2}});
  EXPECT_NE(a->ContentHash(), b->ContentHash());
}

TEST(DatabaseTest, AdoptRelation) {
  Database db;
  auto rel = std::make_unique<Relation>("X", 2);
  rel->Insert({1, 2});
  rel->Seal();
  Relation* ptr = rel.get();
  EXPECT_EQ(db.AdoptRelation(std::move(rel)), ptr);
  EXPECT_EQ(db.Find("X"), ptr);
}

TEST(DecompositionTest, ToStringMentionsVariables) {
  auto q = ParseConjunctiveQuery("Q(x,y) = R(x,y)");
  ASSERT_TRUE(q.ok());
  VarId x = q.value().FindVar("x"), y = q.value().FindVar("y");
  TreeDecomposition td;
  int r = td.AddNode(VarBit(x));
  int n = td.AddNode(VarBit(x) | VarBit(y));
  td.AddEdge(r, n);
  td.Finalize(r);
  std::string s = td.ToString(q.value());
  EXPECT_NE(s.find("root"), std::string::npos);
  EXPECT_NE(s.find("x"), std::string::npos);
  EXPECT_NE(s.find("y"), std::string::npos);
}

TEST(HypergraphTest, DirectConstruction) {
  Hypergraph h(4, {VarBit(0) | VarBit(1), VarBit(2) | VarBit(3)});
  EXPECT_EQ(h.num_edges(), 2);
  EXPECT_EQ(VarSetSize(h.vertices()), 4);
  EXPECT_FALSE(h.IsConnected(h.vertices()));
}

TEST(StatsTest, AuxAndTotalBytes) {
  Database db;
  MakeRandomGraph(db, "R", 10, 40, true, 1);
  CompressedRepOptions copt;
  copt.tau = 2.0;
  auto rep = CompressedRep::Build(TriangleView("bfb"), db, copt);
  ASSERT_TRUE(rep.ok());
  const CompressedRepStats& s = rep.value()->stats();
  EXPECT_EQ(s.AuxBytes(), s.tree_bytes + s.dict_bytes);
  EXPECT_EQ(s.TotalBytes(), s.AuxBytes() + s.index_bytes);
  EXPECT_GT(s.index_bytes, 0u);
  EXPECT_GE(s.build_seconds, 0.0);
}

TEST(ViewToStringTest, AdornmentVisible) {
  AdornedView v = TriangleView("bfb");
  EXPECT_NE(v.ToString().find("Q^bfb"), std::string::npos);
}

TEST(CompressedRepTest, MaxTreeNodeGuardRespectsOption) {
  // A tiny node budget must abort cleanly... the guard is a CHECK, so we
  // instead verify a generous budget succeeds and reports sizes under it.
  Database db;
  MakeRandomGraph(db, "R", 8, 30, true, 2);
  CompressedRepOptions copt;
  copt.tau = 1.0;
  copt.max_tree_nodes = 1u << 20;
  auto rep = CompressedRep::Build(TriangleView("bfb"), db, copt);
  ASSERT_TRUE(rep.ok());
  EXPECT_LT(rep.value()->stats().tree_nodes, copt.max_tree_nodes);
}

TEST(ZigZagTest, UncoveredMiddleEdgeGetsOwnBag) {
  // P_5: after pairing, the middle edge {x3, x4} is already inside the
  // last paired bag {x2,x3,x4,x5}; P_7 leaves {x4,x5} uncovered by pairs
  // only if the closing logic failed — validate both.
  for (int n : {5, 7}) {
    AdornedView view = PathView(n);
    Hypergraph h(view.cq());
    std::vector<VarId> path_vars;
    for (int i = 1; i <= n + 1; ++i)
      path_vars.push_back(view.cq().FindVar("x" + std::to_string(i)));
    TreeDecomposition td = BuildZigZagPath(path_vars);
    EXPECT_TRUE(td.Validate(h).ok()) << n;
  }
}

TEST(AnswerTimeTest, TotalAnswerTimeBoundHolds) {
  // T_A = O~(|q(D)| + tau |q(D)|^{1/alpha}) (Theorem 1): check the
  // measured total ops stay within a generous constant of the bound.
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 12);
  AdornedView view = TriangleView("bfb");
  const double tau = 16.0;
  CompressedRepOptions copt;
  copt.tau = tau;
  auto rep = CompressedRep::Build(view, db, copt);
  ASSERT_TRUE(rep.ok());
  const double alpha = rep.value()->stats().alpha;
  const double log_n = std::log2((double)db.TotalTuples());
  for (Value a = 1; a <= 12; ++a) {
    auto e = rep.value()->Answer({a, 12 + a});
    DelayProfile p = MeasureEnumeration(*e);
    if (p.num_tuples == 0) continue;
    const double bound =
        ((double)p.num_tuples +
         tau * std::pow((double)p.num_tuples, 1.0 / alpha)) *
        log_n * 16.0;
    EXPECT_LE((double)p.total_ops, bound);
  }
}

}  // namespace
}  // namespace cqc

// Differential suite for the AnswerRep adapters: every adapter entry point
// must be byte-identical to the equivalent direct call on the underlying
// structure (Answer, AnswerRange, Resume, NextBatch), across the
// property-sweep query families — plus the hardening contract: malformed
// requests come back as Status errors, not crashes.
#include <gtest/gtest.h>

#include "core/cursor.h"
#include "plan/answer_rep.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using testing::InterestingBoundValuations;
using testing::OracleAnswer;
using testing::SortedCopy;

constexpr RepKind kAllKinds[] = {RepKind::kCompressed, RepKind::kDecomposed,
                                 RepKind::kDirect, RepKind::kMaterialized};

std::unique_ptr<AnswerRep> MustBuild(RepKind kind, const AdornedView& view,
                                     const Database& db, double tau = 4.0) {
  RepBuildSpec spec;
  spec.kind = kind;
  spec.compressed.tau = tau;
  auto rep = BuildAnswerRep(spec, view, db);
  CQC_CHECK(rep.ok()) << RepKindName(kind) << ": " << rep.status().message();
  return std::move(rep).value();
}

/// The "direct call" side of the differential: bypasses the adapter and
/// invokes the concrete structure's own Answer.
std::vector<Tuple> DirectAnswer(const AnswerRep& rep,
                                const BoundValuation& vb) {
  switch (rep.kind()) {
    case RepKind::kCompressed:
      return CollectAll(*static_cast<const CompressedAnswerRep&>(rep)
                             .underlying()
                             .Answer(vb));
    case RepKind::kDecomposed:
      return CollectAll(*static_cast<const DecomposedAnswerRep&>(rep)
                             .underlying()
                             .Answer(vb));
    case RepKind::kDirect:
      return CollectAll(
          *static_cast<const DirectAnswerRep&>(rep).underlying().Answer(vb));
    case RepKind::kMaterialized:
      return CollectAll(*static_cast<const MaterializedAnswerRep&>(rep)
                             .underlying()
                             .Answer(vb));
  }
  return {};
}

std::vector<Tuple> AdapterAnswer(const AnswerRep& rep,
                                 const BoundValuation& vb) {
  auto e = rep.Answer(vb);
  CQC_CHECK(e.ok()) << e.status().message();
  return CollectAll(*e.value());
}

/// Runs the full differential battery for one (view, db) pair.
void CheckFamily(const AdornedView& view, const Database& db,
                 const Database* aux_db = nullptr) {
  SCOPED_TRACE(view.ToString());
  const int mu = view.num_free();
  for (RepKind kind : kAllKinds) {
    SCOPED_TRACE(RepKindName(kind));
    RepBuildSpec spec;
    spec.kind = kind;
    spec.compressed.tau = 4.0;
    auto built = BuildAnswerRep(spec, view, db, aux_db);
    ASSERT_TRUE(built.ok()) << built.status().message();
    const AnswerRep& rep = *built.value();
    EXPECT_EQ(rep.kind(), kind);

    // Cap the battery per structure: an evenly spaced sample (plus the
    // trailing guaranteed misses) keeps the naive-oracle cost sane under
    // ASan while still covering hits, partial hits, and misses.
    std::vector<BoundValuation> vbs =
        InterestingBoundValuations(view, db, aux_db);
    if (vbs.size() > 13) {
      std::vector<BoundValuation> sampled;
      for (size_t i = 0; i < 11; ++i)
        sampled.push_back(vbs[i * (vbs.size() - 2) / 11]);
      sampled.push_back(vbs[vbs.size() - 2]);
      sampled.push_back(vbs.back());
      vbs = std::move(sampled);
    }
    for (const BoundValuation& vb : vbs) {
      const std::vector<Tuple> direct = DirectAnswer(rep, vb);
      const std::vector<Tuple> via_adapter = AdapterAnswer(rep, vb);
      // Byte-identical: same tuples in the same order.
      ASSERT_EQ(via_adapter, direct);
      EXPECT_EQ(SortedCopy(via_adapter),
                OracleAnswer(view, db, vb, aux_db));

      // NextBatch shares the stream with Next and never drops/duplicates.
      {
        auto e = rep.Answer(vb);
        ASSERT_TRUE(e.ok());
        TupleBuffer batch = CollectAllBatched(*e.value(), mu, 3);
        ASSERT_EQ(batch.size(), direct.size());
        for (size_t i = 0; i < batch.size(); ++i)
          EXPECT_EQ(batch[i].ToTuple(), direct[i]);
      }

      // Existence and count agree with the enumeration.
      auto exists = rep.AnswerExists(vb);
      ASSERT_TRUE(exists.ok());
      EXPECT_EQ(exists.value(), !direct.empty());
      auto count = rep.Count(vb);
      ASSERT_TRUE(count.ok());
      EXPECT_EQ(count.value(), direct.size());

      // Resume from a cursor taken mid-stream continues the exact suffix.
      if (mu > 0 && direct.size() >= 2) {
        auto e = rep.Answer(vb);
        ASSERT_TRUE(e.ok());
        CursorEnumerator cursored(std::move(e).value());
        Tuple t;
        const size_t pause_at = direct.size() / 2;
        for (size_t i = 0; i < pause_at; ++i) ASSERT_TRUE(cursored.Next(&t));
        auto resumed = rep.Resume(vb, cursored.cursor());
        ASSERT_TRUE(resumed.ok()) << resumed.status().message();
        std::vector<Tuple> suffix = CollectAll(*resumed.value());
        ASSERT_EQ(suffix,
                  std::vector<Tuple>(direct.begin() + pause_at,
                                     direct.end()));
      }

      // AnswerRange clips to the advertised interval where supported.
      if (rep.capabilities().range_restricted && direct.size() >= 2) {
        FInterval range{direct[direct.size() / 3],
                        direct[(2 * direct.size()) / 3]};
        auto ranged = rep.AnswerRange(vb, range);
        ASSERT_TRUE(ranged.ok()) << ranged.status().message();
        std::vector<Tuple> got = CollectAll(*ranged.value());
        std::vector<Tuple> want;
        for (const Tuple& u : direct)
          if (range.Contains(u)) want.push_back(u);
        EXPECT_EQ(got, want);
      }
    }
  }
}

TEST(AnswerRepDifferential, TriangleTripartite) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 5);
  CheckFamily(TriangleView("bfb"), db);
  CheckFamily(TriangleView("fff"), db);
}

TEST(AnswerRepDifferential, FourCycleMixedAdornments) {
  Database db;
  Rng rng(99);
  for (const char* name : {"R", "S", "T", "U"}) {
    std::vector<Tuple> rows;
    for (int i = 0; i < 28; ++i)
      rows.push_back({rng.UniformRange(1, 6), rng.UniformRange(1, 6)});
    testing::AddRelation(db, name, 2, rows);
  }
  for (const char* ad : {"bffb", "bfbf", "ffff", "bbbb"}) {
    auto view = ParseAdornedView(std::string("Q^") + ad +
                                 "(a,b,c,d) = R(a,b), S(b,c), T(c,d), U(d,a)");
    ASSERT_TRUE(view.ok());
    CheckFamily(view.value(), db);
  }
}

TEST(AnswerRepDifferential, Star4) {
  Database db;
  for (int i = 1; i <= 4; ++i)
    MakeRandomGraph(db, "R" + std::to_string(i), 9, 30, false, 60 + i);
  CheckFamily(StarView(4), db);
}

TEST(AnswerRepDifferential, Path5) {
  Database db;
  MakePathRelations(db, "R", 5, 9, 26, 15);
  CheckFamily(PathView(5), db);
}

TEST(AnswerRepDifferential, SetIntersectionZipf) {
  Database db;
  MakeZipfBipartite(db, "R", 25, 60, 300, 0.9, 44);
  CheckFamily(SetIntersectionView(), db);
}

TEST(AnswerRepHardening, ArityMismatchesReturnStatusNotCrash) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 4);
  const AdornedView view = TriangleView("bfb");  // expects 2 bound values
  for (RepKind kind : kAllKinds) {
    SCOPED_TRACE(RepKindName(kind));
    auto rep = MustBuild(kind, view, db);
    for (const BoundValuation& bad :
         {BoundValuation{}, BoundValuation{1}, BoundValuation{1, 2, 3}}) {
      EXPECT_FALSE(rep->Answer(bad).ok());
      EXPECT_FALSE(rep->AnswerExists(bad).ok());
      EXPECT_FALSE(rep->Count(bad).ok());
      EXPECT_FALSE(rep->Resume(bad, EnumerationCursor{}).ok());
      ParallelOptions popt;
      popt.num_threads = 2;
      EXPECT_FALSE(rep->ParallelAnswer(bad, popt).ok());
    }
    // Malformed range: wrong arity bounds.
    FInterval bad_range{Tuple{1}, Tuple{2}};  // mu is 1 here... make wrong
    bad_range.lo = {1, 2};
    bad_range.hi = {3, 4};
    auto r = rep->AnswerRange({1, 9}, bad_range);
    EXPECT_FALSE(r.ok());
    // Malformed cursor: off-arity last tuple.
    EnumerationCursor cur;
    cur.emitted = 1;
    cur.has_last = true;
    cur.last = {1, 2, 3};
    EXPECT_FALSE(rep->Resume({1, 9}, cur).ok());
  }
}

TEST(AnswerRepHardening, RangeCarryingCursorsRejectedWhereUnsupported) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 4);
  const AdornedView view = TriangleView("bfb");
  EnumerationCursor cur;
  cur.emitted = 1;
  cur.range_lo = {2};
  cur.range_hi = {7};
  // Lex-ordered structures honor the range on resume; the others must
  // refuse the cursor rather than replay tuples outside its range.
  for (RepKind kind : {RepKind::kCompressed, RepKind::kDirect})
    EXPECT_TRUE(MustBuild(kind, view, db)->Resume({1, 9}, cur).ok())
        << RepKindName(kind);
  for (RepKind kind : {RepKind::kDecomposed, RepKind::kMaterialized})
    EXPECT_FALSE(MustBuild(kind, view, db)->Resume({1, 9}, cur).ok())
        << RepKindName(kind);
}

TEST(AnswerRepHardening, RangeUnsupportedIsAnError) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 4);
  const AdornedView view = TriangleView("bfb");
  for (RepKind kind : {RepKind::kDecomposed, RepKind::kMaterialized}) {
    auto rep = MustBuild(kind, view, db);
    EXPECT_FALSE(rep->capabilities().range_restricted);
    EXPECT_FALSE(rep->AnswerRange({1, 9}, FInterval{{1}, {9}}).ok());
  }
  for (RepKind kind : {RepKind::kCompressed, RepKind::kDirect}) {
    auto rep = MustBuild(kind, view, db);
    EXPECT_TRUE(rep->capabilities().range_restricted);
  }
}

TEST(AnswerRepHardening, BooleanViewsAnswerThroughEveryKind) {
  Database db;
  testing::AddRelation(db, "R", 2, {{1, 2}, {2, 3}});
  auto view = ParseAdornedView("Q^bb(x,y) = R(x,y)");
  ASSERT_TRUE(view.ok());
  for (RepKind kind : kAllKinds) {
    SCOPED_TRACE(RepKindName(kind));
    auto rep = MustBuild(kind, view.value(), db);
    auto hit = rep->AnswerExists({1, 2});
    auto miss = rep->AnswerExists({2, 1});
    ASSERT_TRUE(hit.ok());
    ASSERT_TRUE(miss.ok());
    EXPECT_TRUE(hit.value());
    EXPECT_FALSE(miss.value());
    EXPECT_FALSE(rep->AnswerExists({1}).ok());  // arity still validated
  }
}

TEST(AnswerRepCapabilities, TagsMatchTheStructures) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 4);
  const AdornedView view = TriangleView("bfb");
  auto compressed = MustBuild(RepKind::kCompressed, view, db);
  EXPECT_TRUE(compressed->capabilities().lex_ordered);
  EXPECT_TRUE(compressed->capabilities().low_delay_resume);
  EXPECT_TRUE(compressed->capabilities().sharded);
  auto decomposed = MustBuild(RepKind::kDecomposed, view, db);
  EXPECT_FALSE(decomposed->capabilities().lex_ordered);
  EXPECT_TRUE(decomposed->capabilities().counting);
  auto materialized = MustBuild(RepKind::kMaterialized, view, db);
  EXPECT_TRUE(materialized->capabilities().lex_ordered);
  EXPECT_TRUE(materialized->capabilities().counting);
  EXPECT_FALSE(materialized->capabilities().sharded);
  for (RepKind kind : kAllKinds) {
    auto rep = MustBuild(kind, view, db);
    EXPECT_GT(rep->SpaceBytes(), 0u);
    EXPECT_FALSE(rep->Describe().empty());
  }
}

/// ParallelAnswer through the adapter matches the sequential stream (ordered
/// mode for the sharded compressed structure; multiset for decomposed).
TEST(AnswerRepParallel, AdapterParallelMatchesSequential) {
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 6);
  const AdornedView view = TriangleView("bfb");
  ParallelOptions popt;
  popt.num_threads = 3;
  for (RepKind kind : kAllKinds) {
    SCOPED_TRACE(RepKindName(kind));
    auto rep = MustBuild(kind, view, db);
    for (Value a = 1; a <= 6; ++a) {
      const BoundValuation vb{a, 12 + a};
      std::vector<Tuple> seq = AdapterAnswer(*rep, vb);
      auto par = rep->ParallelAnswer(vb, popt);
      ASSERT_TRUE(par.ok());
      std::vector<Tuple> got = CollectAll(*par.value());
      if (rep->capabilities().lex_ordered)
        EXPECT_EQ(got, seq);
      else
        EXPECT_EQ(SortedCopy(got), SortedCopy(seq));
    }
  }
}

}  // namespace
}  // namespace cqc

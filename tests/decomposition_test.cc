#include <gtest/gtest.h>

#include <cmath>

#include "decomposition/connex_builder.h"
#include "decomposition/delay_assignment.h"
#include "decomposition/tree_decomposition.h"
#include "query/parser.h"
#include "workload/catalog.h"

namespace cqc {
namespace {

constexpr double kTol = 1e-6;

ConjunctiveQuery Parse(const std::string& text) {
  auto q = ParseConjunctiveQuery(text);
  CQC_CHECK(q.ok()) << q.status().message();
  return std::move(q).value();
}

TEST(TreeDecompositionTest, FinalizeOrientsAndComputesAnc) {
  ConjunctiveQuery cq = Parse("Q(a,b,c) = R(a,b), S(b,c)");
  VarId a = cq.FindVar("a"), b = cq.FindVar("b"), c = cq.FindVar("c");
  TreeDecomposition td;
  int root = td.AddNode(VarBit(a));
  int n1 = td.AddNode(VarBit(a) | VarBit(b));
  int n2 = td.AddNode(VarBit(b) | VarBit(c));
  td.AddEdge(root, n1);
  td.AddEdge(n1, n2);
  td.Finalize(root);
  EXPECT_EQ(td.parent(n1), root);
  EXPECT_EQ(td.parent(n2), n1);
  EXPECT_EQ(td.anc(n2), VarBit(a) | VarBit(b));
  EXPECT_EQ(td.BagBound(n2), VarBit(b));
  EXPECT_EQ(td.BagFree(n2), VarBit(c));
  EXPECT_EQ(td.preorder().front(), root);
  Hypergraph h(cq);
  EXPECT_TRUE(td.Validate(h).ok());
}

TEST(TreeDecompositionTest, DetectsMissingEdgeCoverage) {
  ConjunctiveQuery cq = Parse("Q(a,b,c) = R(a,b), S(b,c), T(a,c)");
  VarId a = cq.FindVar("a"), b = cq.FindVar("b"), c = cq.FindVar("c");
  TreeDecomposition td;
  int r = td.AddNode(VarBit(a) | VarBit(b));
  int n = td.AddNode(VarBit(b) | VarBit(c));
  td.AddEdge(r, n);
  td.Finalize(r);
  Hypergraph h(cq);
  EXPECT_FALSE(td.Validate(h).ok());  // T(a,c) fits in no bag
}

TEST(TreeDecompositionTest, DetectsRunningIntersectionViolation) {
  ConjunctiveQuery cq = Parse("Q(a,b,c) = R(a,b), S(b,c)");
  VarId a = cq.FindVar("a"), b = cq.FindVar("b"), c = cq.FindVar("c");
  TreeDecomposition td;
  // a appears in two bags separated by one without it.
  int r = td.AddNode(VarBit(a) | VarBit(b));
  int m = td.AddNode(VarBit(b) | VarBit(c));
  int l = td.AddNode(VarBit(a) | VarBit(c));
  td.AddEdge(r, m);
  td.AddEdge(m, l);
  td.Finalize(r);
  Hypergraph h(cq);
  EXPECT_FALSE(td.Validate(h).ok());
}

TEST(TreeDecompositionTest, ConnexValidation) {
  ConjunctiveQuery cq = Parse("Q(a,b) = R(a,b)");
  VarId a = cq.FindVar("a"), b = cq.FindVar("b");
  TreeDecomposition td;
  int r = td.AddNode(VarBit(a));
  int n = td.AddNode(VarBit(a) | VarBit(b));
  td.AddEdge(r, n);
  td.Finalize(r);
  EXPECT_TRUE(td.ValidateConnex(VarBit(a)).ok());
  EXPECT_FALSE(td.ValidateConnex(VarBit(b)).ok());
}

TEST(ConnexBuilderTest, EliminationOnTwoPath) {
  // Example 16: R(x,y), S(y,z) with V_b = {x,z}: the only decomposition has
  // a bag {x,y,z}, so fhw(H | V_b) = 2 > fhw(H) = 1.
  ConjunctiveQuery cq = Parse("Q(x,y,z) = R(x,y), S(y,z)");
  VarId x = cq.FindVar("x"), y = cq.FindVar("y"), z = cq.FindVar("z");
  Hypergraph h(cq);
  auto td = BuildConnexByElimination(h, VarBit(x) | VarBit(z), {y});
  ASSERT_TRUE(td.ok()) << td.status().message();
  EXPECT_TRUE(td.value().Validate(h).ok());
  auto found = SearchConnexDecomposition(h, VarBit(x) | VarBit(z));
  ASSERT_TRUE(found.ok());
  EXPECT_NEAR(found.value().width, 2.0, kTol);  // Example 16
}

TEST(ConnexBuilderTest, TriangleBfb) {
  AdornedView view = TriangleView("bfb");
  Hypergraph h(view.cq());
  auto found = SearchConnexDecomposition(h, view.bound_set());
  ASSERT_TRUE(found.ok());
  // Single free variable y: bag {x,y,z}; rho*(triangle) = 3/2.
  EXPECT_NEAR(found.value().width, 1.5, kTol);
  EXPECT_TRUE(found.value().decomposition.Validate(h).ok());
  EXPECT_TRUE(
      found.value().decomposition.ValidateConnex(view.bound_set()).ok());
}

TEST(ConnexBuilderTest, FullEnumerationTriangleFhw) {
  // V_b = empty: fhw(H | {}) = fhw(H) = 3/2 for the triangle.
  AdornedView view = TriangleView("fff");
  Hypergraph h(view.cq());
  auto found = SearchConnexDecomposition(h, 0);
  ASSERT_TRUE(found.ok());
  EXPECT_NEAR(found.value().width, 1.5, kTol);
}

TEST(ConnexBuilderTest, AcyclicPathFullEnumerationWidth1) {
  AdornedView view = PathView(4, "fffff");
  Hypergraph h(view.cq());
  auto found = SearchConnexDecomposition(h, 0);
  ASSERT_TRUE(found.ok());
  EXPECT_NEAR(found.value().width, 1.0, kTol);  // acyclic: fhw = 1
}

TEST(ConnexBuilderTest, EliminationOrderErrors) {
  ConjunctiveQuery cq = Parse("Q(x,y,z) = R(x,y), S(y,z)");
  VarId x = cq.FindVar("x"), y = cq.FindVar("y"), z = cq.FindVar("z");
  Hypergraph h(cq);
  EXPECT_FALSE(BuildConnexByElimination(h, VarBit(x), {y, y}).ok());
  EXPECT_FALSE(BuildConnexByElimination(h, VarBit(x), {x}).ok());
  EXPECT_FALSE(BuildConnexByElimination(h, VarBit(x), {y}).ok());  // z miss
}

TEST(ConnexBuilderTest, ZigZagPathValid) {
  for (int n = 2; n <= 7; ++n) {
    AdornedView view = PathView(n);
    Hypergraph h(view.cq());
    std::vector<VarId> path_vars;
    for (int i = 1; i <= n + 1; ++i)
      path_vars.push_back(view.cq().FindVar("x" + std::to_string(i)));
    TreeDecomposition td = BuildZigZagPath(path_vars);
    EXPECT_TRUE(td.Validate(h).ok()) << "n=" << n;
    EXPECT_TRUE(td.ValidateConnex(view.bound_set()).ok()) << "n=" << n;
  }
}

TEST(DelayAssignmentTest, Example9Numbers) {
  // Figure 2 right + Example 9: path v1..v7, C = {v1,v5,v6}; bags
  // t1 = {v2,v4,v1,v5} (delta 1/3), t2 = {v3,v2,v4} (delta 1/6),
  // t3 = {v7,v6} (delta 0). Expect width 5/3, height 1/2, u* = 2.
  ConjunctiveQuery cq = Parse(
      "Q(v1,v2,v3,v4,v5,v6,v7) = R1(v1,v2), R2(v2,v3), R3(v3,v4), "
      "R4(v4,v5), R5(v5,v6), R6(v6,v7)");
  auto v = [&](int i) { return VarBit(cq.FindVar("v" + std::to_string(i))); };
  Hypergraph h(cq);
  TreeDecomposition td;
  int root = td.AddNode(v(1) | v(5) | v(6));
  int t1 = td.AddNode(v(2) | v(4) | v(1) | v(5));
  int t2 = td.AddNode(v(3) | v(2) | v(4));
  int t3 = td.AddNode(v(7) | v(6));
  td.AddEdge(root, t1);
  td.AddEdge(t1, t2);
  td.AddEdge(root, t3);
  td.Finalize(root);
  ASSERT_TRUE(td.Validate(h).ok());
  ASSERT_TRUE(td.ValidateConnex(v(1) | v(5) | v(6)).ok());

  DelayAssignment delta = DelayAssignment::Zero(td);
  delta.delta[t1] = 1.0 / 3.0;
  delta.delta[t2] = 1.0 / 6.0;
  DecompositionMetrics m = ComputeMetrics(td, h, delta);
  EXPECT_NEAR(m.width, 5.0 / 3.0, kTol);
  EXPECT_NEAR(m.height, 0.5, kTol);
  EXPECT_NEAR(m.u_star, 2.0, kTol);
  EXPECT_NEAR(m.bags[t3].cover.rho_plus, 1.0, kTol);
}

TEST(DelayAssignmentTest, Example10PathWidths) {
  // Zig-zag decomposition of P_6 with uniform delta: width = 2 - delta,
  // height = floor(n/2) * delta.
  AdornedView view = PathView(6);
  Hypergraph h(view.cq());
  std::vector<VarId> path_vars;
  for (int i = 1; i <= 7; ++i)
    path_vars.push_back(view.cq().FindVar("x" + std::to_string(i)));
  TreeDecomposition td = BuildZigZagPath(path_vars);
  const double d = 0.25;
  DelayAssignment delta = DelayAssignment::Uniform(td, d);
  DecompositionMetrics m = ComputeMetrics(td, h, delta);
  EXPECT_NEAR(m.width, 2.0 - d, kTol);
  EXPECT_NEAR(m.height, 3 * d, kTol);
}

TEST(DelayAssignmentTest, ZeroAssignmentGivesPlainWidths) {
  AdornedView view = TriangleView("bfb");
  Hypergraph h(view.cq());
  auto found = SearchConnexDecomposition(h, view.bound_set());
  ASSERT_TRUE(found.ok());
  DelayAssignment zero = DelayAssignment::Zero(found.value().decomposition);
  DecompositionMetrics m =
      ComputeMetrics(found.value().decomposition, h, zero);
  EXPECT_NEAR(m.width, found.value().width, kTol);
  EXPECT_NEAR(m.height, 0.0, kTol);
}

TEST(DelayAssignmentTest, OptimizeUnderSpaceBudget) {
  // Zig-zag P_4 bags have rho = 2 and alpha = 1 on their free variables,
  // so MinDelayCover under budget N^b yields delta = 2 - b per bag.
  AdornedView view = PathView(4);
  Hypergraph h(view.cq());
  std::vector<VarId> path_vars;
  for (int i = 1; i <= 5; ++i)
    path_vars.push_back(view.cq().FindVar("x" + std::to_string(i)));
  TreeDecomposition td = BuildZigZagPath(path_vars);
  const double log_n = std::log(1e5);
  DelayAssignment a = OptimizeDelayAssignment(td, h, log_n, 1.5 * log_n);
  for (int t = 0; t < td.num_nodes(); ++t) {
    if (t == td.root()) continue;
    if (VarSetSize(td.BagFree(t)) == 2) {
      // Paired bag {x1,x2,x4,x5}: rho = 2, slack 1 on {x2,x4}:
      // delta = (2 - 1.5) / 1 = 0.5.
      EXPECT_NEAR(a.delta[t], 0.5, 1e-3) << "bag " << t;
    } else {
      // Middle bag {x2,x3,x4}: single free var x3 covered twice, so the
      // LP exploits slack 2: delta = (2 - 1.5) / 2 = 0.25.
      EXPECT_NEAR(a.delta[t], 0.25, 1e-3) << "bag " << t;
    }
  }
  // A full budget (N^2) buys constant delay everywhere.
  DelayAssignment zero = OptimizeDelayAssignment(td, h, log_n, 2.0 * log_n);
  for (int t = 0; t < td.num_nodes(); ++t)
    EXPECT_NEAR(zero.delta[t], 0.0, 1e-3);
  // Budgets are monotone: less space, more delay.
  DelayAssignment tight = OptimizeDelayAssignment(td, h, log_n, 1.2 * log_n);
  for (int t = 0; t < td.num_nodes(); ++t) {
    if (t == td.root()) continue;
    EXPECT_GT(tight.delta[t], a.delta[t]);
  }
}

TEST(DelayAssignmentTest, Example17Figure7Width) {
  // Figure 7: edges U(v1,v2), W(v1,v5), V(v2,v5)... the paper's hypergraph
  // has C = {v1,v2,v3,v4} and a lower bag {v5, v1, v2} coverable with
  // fractional weight 3/2: fhw(H | C) = 3/2 while fhw(H) = 2.
  ConjunctiveQuery cq = Parse(
      "Q(v1,v2,v3,v4,v5) = R(v1,v2), S(v2,v3), T(v3,v4), U(v4,v1), "
      "V(v2,v5), W(v1,v5)");
  auto v = [&](int i) { return VarBit(cq.FindVar("v" + std::to_string(i))); };
  Hypergraph h(cq);
  VarSet bound = v(1) | v(2) | v(3) | v(4);
  TreeDecomposition td;
  int root = td.AddNode(bound);
  int t1 = td.AddNode(v(5) | v(1) | v(2));
  td.AddEdge(root, t1);
  td.Finalize(root);
  ASSERT_TRUE(td.Validate(h).ok());
  ASSERT_TRUE(td.ValidateConnex(bound).ok());
  DelayAssignment zero = DelayAssignment::Zero(td);
  DecompositionMetrics m = ComputeMetrics(td, h, zero);
  EXPECT_NEAR(m.width, 1.5, kTol);  // Example 17
}

}  // namespace
}  // namespace cqc

// §1 graph-analytics application: the co-author graph defined as a view
// over a bibliographic schema R(author, paper).
//
// Graph APIs ask for the neighbors of a vertex: the adorned view
// V^bff(x, y, p) = R(x,p), R(y,p) returns each co-author y together with a
// witness paper p (the paper's V^bf(x,y) projects p away; projections are
// future work in the paper, and the full variant answers the same API).
//
// Materializing the co-author graph can be quadratic under skew; the
// d-representation (Prop. 4) stores only linear space yet answers each
// neighbor request with constant delay.
#include <cstdio>
#include <set>

#include "baseline/d_representation.h"
#include "baseline/materialized_view.h"
#include "workload/catalog.h"
#include "workload/generators.h"

int main() {
  using namespace cqc;

  Database db;
  // Zipf-skewed authorship: a few hyper-prolific authors.
  MakeZipfBipartite(db, "R", /*num_authors=*/3000, /*num_papers=*/12000,
                    /*count=*/60000, /*theta=*/0.95, /*seed=*/2024);
  std::printf("bibliography: %zu (author, paper) pairs\n", db.TotalTuples());

  AdornedView view = CoauthorView();

  auto drep = BuildDRepresentation(view, db).value();
  auto mv = MaterializedView::Build(view, db).value();
  std::printf("d-representation space: %zu B (build %.2fs)\n",
              drep->stats().total_aux_bytes, drep->stats().build_seconds);
  std::printf("materialized view:      %zu tuples = %zu B (build %.2fs)\n\n",
              mv->num_tuples(), mv->SpaceBytes(), mv->build_seconds());

  // Neighbor API: distinct co-authors of the most prolific authors.
  for (Value author : {1, 2, 3, 100, 2500}) {
    auto e = drep->Answer({author});
    std::set<Value> coauthors;
    Tuple t;  // (y, p)
    while (e->Next(&t)) coauthors.insert(t[0]);
    coauthors.erase(author);
    std::printf("author %4llu has %4zu distinct co-authors\n",
                (unsigned long long)author, coauthors.size());
  }
  std::printf(
      "\ntakeaway: the factorized structure answers the neighbor API\n"
      "without ever materializing the (much larger) co-author graph.\n");
  return 0;
}

// §8 extension walkthrough: keeping a compressed view answerable while the
// base data churns (insert + delete maintenance; docs/update-semantics.md).
//
// A fraud-detection pipeline watches a payments graph for "money cycles":
// mutual counterparties of a suspicious pair, i.e. the triangle view
// Q^bfb(x,y,z) = R(x,y), R(y,z), R(z,x). New transactions stream in and
// stale ones expire (deletions filter answers via tombstone probes); the
// structure answers continuously and folds the pending delta into a fresh
// snapshot when its mass grows past 20% of the snapshot.
#include <cstdio>

#include "core/updatable_rep.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

int main() {
  using namespace cqc;

  Database db;
  MakeRandomGraph(db, "R", 200, 3000, /*symmetric=*/true, 42);
  AdornedView view = TriangleView("bfb");

  UpdatableRepOptions options;
  options.rep.tau = 16.0;
  options.rebuild_fraction = 0.20;
  auto rep = UpdatableRep::Build(view, db, options).value();
  std::printf("initial snapshot: %zu edges\n\n", rep->snapshot_tuples());

  Rng rng(7);
  size_t answered = 0, hits = 0;
  for (int minute = 1; minute <= 10; ++minute) {
    // A burst of new transactions, with some older ones expiring...
    for (int i = 0; i < 400; ++i) {
      Value a = rng.UniformRange(1, 200), b = rng.UniformRange(1, 200);
      if (a == b) continue;
      if (i % 5 == 4) {
        rep->Delete("R", {a, b}).ok();
        rep->Delete("R", {b, a}).ok();
      } else {
        rep->Insert("R", {a, b}).ok();
        rep->Insert("R", {b, a}).ok();
      }
    }
    // ...interleaved with monitoring queries on fresh edges.
    for (int q = 0; q < 50; ++q) {
      Value a = rng.UniformRange(1, 200), b = rng.UniformRange(1, 200);
      if (a == b) continue;
      ++answered;
      if (rep->AnswerExists({a, b})) ++hits;
    }
    std::printf(
        "minute %2d: snapshot %6zu edges, pending +%zu/-%zu, rebuilds %d\n",
        minute, rep->snapshot_tuples(), rep->pending_inserts(),
        rep->pending_deletes(), rep->num_rebuilds());
  }
  std::printf(
      "\n%zu monitoring requests answered (%zu with mutual "
      "counterparties);\nanswers always reflect the inserts and deletes, "
      "folds amortize the maintenance.\n",
      answered, hits);
  return 0;
}

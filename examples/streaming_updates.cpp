// §8 extension walkthrough: keeping a compressed view answerable while the
// base data grows (insert-only maintenance).
//
// A fraud-detection pipeline watches a payments graph for "money cycles":
// mutual counterparties of a suspicious pair, i.e. the triangle view
// Q^bfb(x,y,z) = R(x,y), R(y,z), R(z,x). New transactions stream in; the
// structure answers continuously and rebuilds itself when the delta grows
// past 20% of the snapshot.
#include <cstdio>

#include "core/updatable_rep.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

int main() {
  using namespace cqc;

  Database db;
  MakeRandomGraph(db, "R", 200, 3000, /*symmetric=*/true, 42);
  AdornedView view = TriangleView("bfb");

  UpdatableRepOptions options;
  options.rep.tau = 16.0;
  options.rebuild_fraction = 0.20;
  auto rep = UpdatableRep::Build(view, db, options).value();
  std::printf("initial snapshot: %zu edges\n\n", rep->snapshot_tuples());

  Rng rng(7);
  size_t answered = 0, hits = 0;
  for (int minute = 1; minute <= 10; ++minute) {
    // A burst of new transactions...
    for (int i = 0; i < 400; ++i) {
      Value a = rng.UniformRange(1, 200), b = rng.UniformRange(1, 200);
      if (a == b) continue;
      rep->Insert("R", {a, b}).ok();
      rep->Insert("R", {b, a}).ok();
    }
    // ...interleaved with monitoring queries on fresh edges.
    for (int q = 0; q < 50; ++q) {
      Value a = rng.UniformRange(1, 200), b = rng.UniformRange(1, 200);
      if (a == b) continue;
      ++answered;
      if (rep->AnswerExists({a, b})) ++hits;
    }
    std::printf(
        "minute %2d: snapshot %6zu edges, pending %5zu, rebuilds %d\n",
        minute, rep->snapshot_tuples(), rep->pending_inserts(),
        rep->num_rebuilds());
  }
  std::printf(
      "\n%zu monitoring requests answered (%zu with mutual "
      "counterparties);\nanswers always reflect the inserts, rebuilds "
      "amortize the maintenance.\n",
      answered, hits);
  return 0;
}

// Theorem 2 walkthrough: a 4-hop reachability view compressed with a
// V_b-connex tree decomposition and a per-bag delay assignment
// (Example 10's zig-zag decomposition).
//
//   P^bfffb(x1..x5) = R1(x1,x2), R2(x2,x3), R3(x3,x4), R4(x4,x5)
//
// Given endpoints (x1, x5), enumerate all connecting 4-hop paths.
#include <cstdio>

#include "decomposition/connex_builder.h"
#include "decomposition/decomposed_rep.h"
#include "workload/catalog.h"
#include "workload/generators.h"

int main() {
  using namespace cqc;

  Database db;
  MakePathRelations(db, "R", 4, /*num_nodes=*/120, /*edges=*/4000,
                    /*seed=*/99);
  AdornedView view = PathView(4);
  std::printf("view: %s\n", view.ToString().c_str());

  // The zig-zag connex decomposition: {x1,x5} - {x1,x2,x4,x5} - {x2,x3,x4}.
  std::vector<VarId> path_vars;
  for (int i = 1; i <= 5; ++i)
    path_vars.push_back(view.cq().FindVar("x" + std::to_string(i)));
  TreeDecomposition td = BuildZigZagPath(path_vars);
  std::printf("\ndecomposition:\n%s\n", td.ToString(view.cq()).c_str());

  for (double delta : {0.0, 0.3}) {
    DecomposedRepOptions options;
    options.delta = DelayAssignment::Uniform(td, delta);
    auto rep = DecomposedRep::Build(view, db, td, options).value();
    const DecompositionMetrics& m = rep->stats().metrics;
    std::printf(
        "delta=%.1f: delta-width %.2f, delta-height %.2f, space %zu B, "
        "build %.2fs\n",
        delta, m.width, m.height, rep->stats().total_aux_bytes,
        rep->stats().build_seconds);
    for (int i = 0; i < (int)rep->stats().bag_descriptions.size(); ++i)
      std::printf("  bag %d: %s\n", i,
                  rep->stats().bag_descriptions[i].c_str());

    // Answer a few endpoint requests.
    const Relation* r1 = db.Find("R1");
    const Relation* r4 = db.Find("R4");
    size_t shown = 0;
    for (size_t i = 0; i < r1->size() && shown < 3; i += 97) {
      Value src = r1->At(i, 0);
      for (size_t j = 0; j < r4->size() && shown < 3; j += 83) {
        Value dst = r4->At(j, 1);
        auto e = rep->Answer({src, dst});
        Tuple mid;  // (x2, x3, x4)
        size_t count = 0;
        while (e->Next(&mid)) ++count;
        if (count > 0) {
          std::printf("  %llu ->..-> %llu: %zu paths\n",
                      (unsigned long long)src, (unsigned long long)dst,
                      count);
          ++shown;
        }
      }
    }
    std::printf("\n");
  }
  std::printf(
      "takeaway: delta > 0 swaps the materialized bags for Theorem-1\n"
      "compressed bags: less space, delay multiplying along the chain.\n");
  return 0;
}

// Example 1 of the paper at scale: mutual-friend analysis on a social
// graph, exploring the tau knob end to end.
//
// The graph mixes a triangle-dense community core with "celebrity" pairs
// whose follower sets are huge but disjoint — requests on those pairs are
// the expensive case the compressed dictionary neutralizes.
#include <cmath>
#include <cstdio>

#include "core/compressed_rep.h"
#include "workload/catalog.h"
#include "workload/generators.h"

int main() {
  using namespace cqc;

  Database db;
  Relation* r = db.AddRelation("R", 2);
  // Community core: complete tripartite structure, many triangles.
  const Value m = 24;
  auto edge = [&](Value a, Value b) {
    r->Insert({a, b});
    r->Insert({b, a});
  };
  for (Value a = 0; a < m; ++a)
    for (Value b = 0; b < m; ++b) {
      edge(1 + a, m + 1 + b);
      edge(m + 1 + a, 2 * m + 1 + b);
      edge(2 * m + 1 + a, 1 + b);
    }
  // Two celebrities who are friends but share no follower.
  const Value celeb1 = 1000, celeb2 = 1001;
  edge(celeb1, celeb2);
  for (int i = 0; i < 3000; ++i) {
    edge(celeb1, 2000 + 2 * (Value)i);      // even followers
    edge(celeb2, 2000 + 2 * (Value)i + 1);  // odd followers
  }
  r->Seal();
  std::printf("social graph: %zu directed edges\n\n", r->size());

  AdornedView view = TriangleView("bfb");
  for (double tau : {1.0, 32.0, 1024.0}) {
    CompressedRepOptions options;
    options.tau = tau;
    auto rep = CompressedRep::Build(view, db, options).value();

    // Community request: plenty of mutual friends.
    auto community = rep->Answer({1, m + 1});
    Tuple t;
    size_t count = 0;
    uint64_t ops0 = ops::Now();
    while (community->Next(&t)) ++count;
    uint64_t community_ops = ops::Now() - ops0;

    // Celebrity request: empty answer, expensive without the dictionary.
    ops0 = ops::Now();
    bool any = rep->AnswerExists({celeb1, celeb2});
    uint64_t celeb_ops = ops::Now() - ops0;

    std::printf(
        "tau=%6.0f  space=%8zu B  community: %zu friends (%llu ops)  "
        "celebrity: %s (%llu ops)\n",
        tau, rep->stats().AuxBytes(), count,
        (unsigned long long)community_ops, any ? "non-empty" : "empty",
        (unsigned long long)celeb_ops);
  }
  std::printf(
      "\ntakeaway: growing tau sheds space; the celebrity request cost\n"
      "grows toward the raw intersection scan as the dictionary thins.\n");
  return 0;
}

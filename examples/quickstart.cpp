// Quickstart: compress a triangle view and answer access requests.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
#include <cstdio>

#include "core/compressed_rep.h"
#include "query/parser.h"
#include "relational/database.h"

int main() {
  using namespace cqc;

  // 1. Load a database: a small friendship graph (symmetric edges).
  Database db;
  Relation* r = db.AddRelation("R", 2);
  const std::pair<Value, Value> edges[] = {{1, 2}, {2, 3}, {3, 1}, {2, 4},
                                           {4, 3}, {4, 5}, {5, 1}};
  for (auto [a, b] : edges) {
    r->Insert({a, b});
    r->Insert({b, a});
  }
  r->Seal();

  // 2. Declare the adorned view: given friends (x, z), enumerate all
  //    mutual friends y (Example 1 of the paper).
  AdornedView view =
      ParseAdornedView("Q^bfb(x,y,z) = R(x,y), R(y,z), R(z,x)").value();

  // 3. Build the compressed representation. tau trades space for delay:
  //    tau = 1 ~ constant delay, larger tau ~ less space.
  CompressedRepOptions options;
  options.tau = 2.0;
  auto rep = CompressedRep::Build(view, db, options).value();
  std::printf("built: %zu tree nodes, %zu dictionary entries, alpha=%.1f\n",
              rep->stats().tree_nodes, rep->stats().dict_entries,
              rep->stats().alpha);

  // 4. Answer access requests.
  for (auto [x, z] : {std::pair<Value, Value>{1, 2},
                      std::pair<Value, Value>{2, 3},
                      std::pair<Value, Value>{4, 5}}) {
    std::printf("mutual friends of (%llu, %llu):", (unsigned long long)x,
                (unsigned long long)z);
    auto e = rep->Answer({x, z});
    Tuple y;
    while (e->Next(&y)) std::printf(" %llu", (unsigned long long)y[0]);
    std::printf("\n");
  }
  return 0;
}

// §1 statistical-inference application (the Felix scenario): an inference
// engine evaluates a logical rule through a fixed access pattern, modeled
// as an adorned view. Felix must choose between lazy (no materialization)
// and eager (full materialization) per subquery; the paper's structure
// exposes the whole continuum, tuned per space budget via the §6 LPs.
//
// Rule: co-worker inference  W(x, y, c) = Works(x, c), Works(y, c)
// accessed as W^bff: given person x, find colleagues y and the company c.
#include <cmath>
#include <cstdio>

#include "core/compressed_rep.h"
#include "fractional/optimizer.h"
#include "query/parser.h"
#include "workload/generators.h"

int main() {
  using namespace cqc;

  Database db;
  // Skewed employment data: big employers dominate.
  MakeZipfBipartite(db, "Works", /*num_authors=*/4000, /*num_papers=*/500,
                    /*count=*/30000, /*theta=*/0.9, /*seed=*/7);
  const double n = (double)db.TotalTuples();
  std::printf("Works(person, company): %.0f tuples\n\n", n);

  AdornedView view =
      ParseAdornedView("W^bff(x,y,c) = Works(x,c), Works(y,c)").value();
  Hypergraph h(view.cq());
  std::vector<double> log_sizes(2, std::log(n));

  std::printf("%-14s %-10s %-12s %-12s %-14s\n", "space budget",
              "LP log_tau", "tau", "aux space", "worst delay ops");
  for (double budget_exp : {1.0, 1.3, 1.6, 2.0}) {
    // Ask the optimizer for the best tau and cover under this budget.
    CoverSolution sol = MinDelayCover(h, view.free_set(), log_sizes,
                                      budget_exp * std::log(n));
    if (!sol.feasible) {
      std::printf("N^%.1f: infeasible\n", budget_exp);
      continue;
    }
    CompressedRepOptions options;
    options.tau = std::exp(sol.log_tau);
    options.cover = sol.u;
    auto rep = CompressedRep::Build(view, db, options).value();

    // Drive the rule through its access pattern for a batch of persons;
    // the quantity of interest is the worst *delay* (gap between
    // consecutive inferences), not the output-bound total time.
    uint64_t worst_delay = 0;
    for (Value person = 1; person <= 200; ++person) {
      auto e = rep->Answer({person});
      DelayProfile p = MeasureEnumeration(*e);
      worst_delay = std::max(worst_delay, p.max_delay_ops);
    }
    std::printf("N^%-11.1f  %-10.2f %-12.0f %-12zu %-14llu\n", budget_exp,
                sol.log_tau, options.tau, rep->stats().AuxBytes(),
                (unsigned long long)worst_delay);
  }
  std::printf(
      "\ntakeaway: instead of Felix's discrete lazy/eager choice, the\n"
      "engine dials the space budget and the LP picks tau and the cover —\n"
      "the full continuum between the two extremes.\n");
  return 0;
}

// Experiment E6 (Prop. 1 + §2.3): the two extremal solutions bracketing
// the compressed structure, plus the all-bound fast path.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/compressed_rep.h"
#include "plan/answer_rep.h"
#include "query/parser.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

int main() {
  using namespace cqc;
  setvbuf(stdout, nullptr, _IOLBF, 0);
  using bench::Table;

  // --- E6a: Prop. 1, all-bound views: linear build, O(1) answers ---
  bench::Banner("E6a: all-bound adorned view (Prop. 1)",
                "T_C = O(|D|), S = O(|D|), delay O(1)");
  {
    Database db;
    MakeRandomGraph(db, "R", 4000, 60000, false, 1);
    auto view = ParseAdornedView("Q^bb(x,y) = R(x,y)");
    CompressedRepOptions copt;
    auto rep = CompressedRep::Build(view.value(), db, copt);
    Rng rng(2);
    uint64_t worst = 0;
    WallTimer timer;
    for (int i = 0; i < 20000; ++i) {
      BoundValuation vb{rng.UniformRange(1, 4000), rng.UniformRange(1, 4000)};
      uint64_t before = ops::Now();
      rep.value()->AnswerExists(vb);
      worst = std::max(worst, ops::Now() - before);
    }
    std::printf(
        "build %.3fs, aux space %s, 20000 boolean requests in %.3fs, worst "
        "request = %llu ops (constant)\n",
        rep.value()->stats().build_seconds,
        bench::HumanBytes(rep.value()->stats().AuxBytes()).c_str(),
        timer.Seconds(), (unsigned long long)worst);
  }

  // --- E6b: three structures on the triangle view ---
  bench::Banner("E6b: materialize vs compress vs direct (triangle V^bfb)",
                "materialized = fastest/biggest, direct = smallest/slowest, "
                "compressed interpolates");
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 40);
  AdornedView view = TriangleView("bfb");
  std::vector<BoundValuation> requests;
  for (Value a = 1; a <= 30; ++a) requests.push_back({a, 40 + a});

  // One dispatch for every structure: build via spec, measure via the
  // AnswerRep serving interface.
  std::vector<std::pair<std::string, RepBuildSpec>> specs;
  {
    RepBuildSpec s;
    s.kind = RepKind::kMaterialized;
    specs.emplace_back("materialized", s);
  }
  for (double tau : {4.0, 64.0}) {
    RepBuildSpec s;
    s.kind = RepKind::kCompressed;
    s.compressed.tau = tau;
    specs.emplace_back(StrFormat("compressed tau=%.0f", tau), s);
  }
  {
    RepBuildSpec s;
    s.kind = RepKind::kDirect;
    specs.emplace_back("direct", s);
  }

  Table table({"structure", "build s", "space", "worst delay (ops)",
               "total TA (s)", "tuples"});
  for (const auto& [label, spec] : specs) {
    auto rep = BuildAnswerRep(spec, view, db);
    CQC_CHECK(rep.ok()) << rep.status().message();
    auto s = bench::MeasureRep(requests, *rep.value());
    table.AddRow({label, StrFormat("%.3f", rep.value()->build_seconds()),
                  bench::HumanBytes(rep.value()->SpaceBytes()),
                  StrFormat("%llu", (unsigned long long)s.worst_delay_ops),
                  StrFormat("%.4f", s.total_seconds),
                  StrFormat("%zu", s.total_tuples)});
  }
  table.Print();
  return 0;
}

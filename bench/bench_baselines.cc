// Experiment E6 (Prop. 1 + §2.3): the two extremal solutions bracketing
// the compressed structure, plus the all-bound fast path.
#include <cmath>
#include <cstdio>

#include "baseline/direct_eval.h"
#include "baseline/materialized_view.h"
#include "bench/bench_common.h"
#include "core/compressed_rep.h"
#include "query/parser.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

int main() {
  using namespace cqc;
  setvbuf(stdout, nullptr, _IOLBF, 0);
  using bench::Table;

  // --- E6a: Prop. 1, all-bound views: linear build, O(1) answers ---
  bench::Banner("E6a: all-bound adorned view (Prop. 1)",
                "T_C = O(|D|), S = O(|D|), delay O(1)");
  {
    Database db;
    MakeRandomGraph(db, "R", 4000, 60000, false, 1);
    auto view = ParseAdornedView("Q^bb(x,y) = R(x,y)");
    CompressedRepOptions copt;
    auto rep = CompressedRep::Build(view.value(), db, copt);
    Rng rng(2);
    uint64_t worst = 0;
    WallTimer timer;
    for (int i = 0; i < 20000; ++i) {
      BoundValuation vb{rng.UniformRange(1, 4000), rng.UniformRange(1, 4000)};
      uint64_t before = ops::Now();
      rep.value()->AnswerExists(vb);
      worst = std::max(worst, ops::Now() - before);
    }
    std::printf(
        "build %.3fs, aux space %s, 20000 boolean requests in %.3fs, worst "
        "request = %llu ops (constant)\n",
        rep.value()->stats().build_seconds,
        bench::HumanBytes(rep.value()->stats().AuxBytes()).c_str(),
        timer.Seconds(), (unsigned long long)worst);
  }

  // --- E6b: three structures on the triangle view ---
  bench::Banner("E6b: materialize vs compress vs direct (triangle V^bfb)",
                "materialized = fastest/biggest, direct = smallest/slowest, "
                "compressed interpolates");
  Database db;
  MakeTripartiteTriangleGraph(db, "R", 40);
  AdornedView view = TriangleView("bfb");
  std::vector<BoundValuation> requests;
  for (Value a = 1; a <= 30; ++a) requests.push_back({a, 40 + a});

  Table table({"structure", "build s", "space", "worst delay (ops)",
               "total TA (s)", "tuples"});
  {
    auto mv = MaterializedView::Build(view, db);
    auto s = bench::MeasureRequests(requests, [&](const BoundValuation& vb) {
      return mv.value()->Answer(vb);
    });
    table.AddRow({"materialized", StrFormat("%.3f", mv.value()->build_seconds()),
                  bench::HumanBytes(mv.value()->SpaceBytes()),
                  StrFormat("%llu", (unsigned long long)s.worst_delay_ops),
                  StrFormat("%.4f", s.total_seconds),
                  StrFormat("%zu", s.total_tuples)});
  }
  for (double tau : {4.0, 64.0}) {
    CompressedRepOptions copt;
    copt.tau = tau;
    auto rep = CompressedRep::Build(view, db, copt);
    auto s = bench::MeasureRequests(requests, [&](const BoundValuation& vb) {
      return rep.value()->Answer(vb);
    });
    table.AddRow({StrFormat("compressed tau=%.0f", tau),
                  StrFormat("%.3f", rep.value()->stats().build_seconds),
                  bench::HumanBytes(rep.value()->stats().AuxBytes()),
                  StrFormat("%llu", (unsigned long long)s.worst_delay_ops),
                  StrFormat("%.4f", s.total_seconds),
                  StrFormat("%zu", s.total_tuples)});
  }
  {
    auto de = DirectEval::Build(view, db);
    auto s = bench::MeasureRequests(requests, [&](const BoundValuation& vb) {
      return de.value()->Answer(vb);
    });
    table.AddRow({"direct", StrFormat("%.3f", de.value()->build_seconds()),
                  bench::HumanBytes(de.value()->SpaceBytes()),
                  StrFormat("%llu", (unsigned long long)s.worst_delay_ops),
                  StrFormat("%.4f", s.total_seconds),
                  StrFormat("%zu", s.total_tuples)});
  }
  table.Print();
  return 0;
}

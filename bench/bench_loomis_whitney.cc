// Experiment E3 (Example 6): Loomis-Whitney joins
//
//   LW_n^{b..bf}(x1..xn) = S1(x2..xn), ..., Sn(x1..x_{n-1})
//
// Claim: rho* = n/(n-1); choosing tau = |D|^{1/(n-1)} yields *linear*
// space with the small delay O~(|D|^{1/(n-1)}). LW joins do not factorize
// (no useful tree decomposition), so Theorem 1 is the only compression
// route — this is where the primitive shines on its own.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/compressed_rep.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

int main() {
  using namespace cqc;
  setvbuf(stdout, nullptr, _IOLBF, 0);
  using bench::Table;

  bench::Banner("E3: Loomis-Whitney LW_n at the linear-space point",
                "space O~(|D| + |D|^{n/(n-1)}/tau); tau = |D|^{1/(n-1)} "
                "gives linear space and delay O~(|D|^{1/(n-1)})");

  for (int n : {3, 4}) {
    const uint64_t dom = (n == 3) ? 300 : 60;
    const size_t per_rel = (n == 3) ? 8000 : 6000;
    Database db;
    MakeLoomisWhitneyRelations(db, "S", n, dom, per_rel, 1234 + n);
    AdornedView view = LoomisWhitneyView(n);
    const double d_size = (double)db.TotalTuples();
    const double lin_tau = std::pow(d_size, 1.0 / (n - 1));

    Rng rng(5);
    std::vector<BoundValuation> requests;
    for (int i = 0; i < 40; ++i) {
      BoundValuation vb;
      for (int j = 0; j < n - 1; ++j) vb.push_back(rng.UniformRange(1, dom));
      requests.push_back(vb);
    }
    // Plus requests guaranteed non-trivial: prefixes of existing tuples of
    // S_n (which constrains x1..x_{n-1}).
    const Relation* sn = db.Find("S" + std::to_string(n));
    for (size_t row = 0; row < 20 && row < sn->size(); ++row) {
      BoundValuation vb;
      for (int j = 0; j < n - 1; ++j) vb.push_back(sn->At(row * 97, j));
      requests.push_back(vb);
    }

    std::printf("\nLW_%d: |D| = %.0f, rho* = %.3f, linear-space tau = %.1f\n",
                n, d_size, (double)n / (n - 1), lin_tau);
    Table table({"tau", "aux space", "index space", "dict entries",
                 "build s", "worst delay (ops)", "tuples"});
    for (double tau : {1.0, lin_tau / 4, lin_tau, 4 * lin_tau}) {
      if (tau < 1) continue;
      CompressedRepOptions copt;
      copt.tau = tau;
      auto rep = CompressedRep::Build(view, db, copt);
      if (!rep.ok()) {
        std::printf("build failed: %s\n", rep.status().message().c_str());
        return 1;
      }
      auto s = bench::MeasureRequests(
          requests,
          [&](const BoundValuation& vb) { return rep.value()->Answer(vb); });
      const CompressedRepStats& st = rep.value()->stats();
      table.AddRow(
          {StrFormat("%.1f", tau), bench::HumanBytes(st.AuxBytes()),
           bench::HumanBytes(st.index_bytes),
           StrFormat("%zu", st.dict_entries),
           StrFormat("%.3f", st.build_seconds),
           StrFormat("%llu", (unsigned long long)s.worst_delay_ops),
           StrFormat("%zu", s.total_tuples)});
    }
    table.Print();
  }
  std::printf(
      "\nshape check: at tau = |D|^{1/(n-1)} the auxiliary space should be\n"
      "a small fraction of the (linear) index space.\n");
  return 0;
}

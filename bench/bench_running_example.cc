// Experiment E2 (Examples 4, 5, 13-15): the running example
//
//   Q^fffbbb(x,y,z,w1,w2,w3) = R1(w1,x,y), R2(w2,y,z), R3(w3,x,z)
//
// Claims: with u = (1,1,1) the slack is alpha(V_f) = 2, so tau = sqrt(N)
// gives space O~(N^2) (vs O(N^3) materialized) with delay O~(sqrt(N)) and
// answer time O~(|q(D)| + sqrt(N) |q(D)|^{1/2}) (Example 5). This bench
// sweeps tau and also re-verifies the paper's exact Example 13-15 trace.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/compressed_rep.h"
#include "core/cost_model.h"
#include "core/splitter.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using bench::Banner;
using bench::HumanBytes;
using bench::MeasureRequests;
using bench::RequestStats;
using bench::Table;

void PaperTrace() {
  Banner("E2a: exact Example 13-15 trace",
         "T(I(r)) ~ 10.56; beta(r) = (1,1,2); Figure 3 tree; "
         "D(r,vb) = D(rr,vb) = 1 for vb = (1,1,1)");
  Database db;
  testing::AddRelation(db, "R1", 3,
                       {{1, 1, 1}, {1, 1, 2}, {1, 2, 1}, {2, 1, 1},
                        {3, 1, 1}});
  testing::AddRelation(db, "R2", 3,
                       {{1, 1, 2}, {1, 2, 1}, {1, 2, 2}, {2, 1, 1},
                        {2, 1, 2}});
  testing::AddRelation(db, "R3", 3,
                       {{1, 1, 1}, {1, 1, 2}, {1, 2, 1}, {2, 1, 1},
                        {2, 1, 2}});
  AdornedView view = RunningExampleView();
  std::vector<BoundAtom> atoms;
  for (const Atom& atom : view.cq().atoms())
    atoms.emplace_back(atom, *db.Find(atom.relation), view.bound_vars(),
                       view.free_vars());
  CostModel cost(&atoms, {0.5, 0.5, 0.5});
  LexDomain domain({{1, 2}, {1, 2}, {1, 2}});
  FInterval root{{1, 1, 1}, {2, 2, 2}};
  std::printf("T(I(r))        = %.4f   (paper: ~10.56)\n",
              cost.IntervalCost(root));
  std::printf("T(vb, I(r))    = %.4f   (paper: 4.414)\n",
              cost.IntervalCostBound(Tuple{1, 1, 1}, root));
  SplitResult split = SplitInterval(root, domain, cost);
  std::printf("beta(r)        = (%llu,%llu,%llu)  (paper: (1,1,2))\n",
              (unsigned long long)split.c[0], (unsigned long long)split.c[1],
              (unsigned long long)split.c[2]);
  CompressedRepOptions copt;
  copt.tau = 4.0;
  copt.cover = std::vector<double>{1, 1, 1};
  auto rep = CompressedRep::Build(view, db, copt);
  const HeavyDictionary& dict = rep.value()->dictionary();
  uint32_t vb = dict.FindValuation(Tuple{1, 1, 1});
  std::printf("tree nodes     = %zu       (Figure 3: 5)\n",
              rep.value()->stats().tree_nodes);
  std::printf("D(r, vb)       = %d        (paper: 1)\n",
              (int)dict.Lookup(0, vb));
  std::printf("D(rr, vb)      = %d        (paper: 1)\n",
              (int)dict.Lookup(rep.value()->tree().node(0).right, vb));
}

}  // namespace
}  // namespace cqc

int main() {
  using namespace cqc;
  setvbuf(stdout, nullptr, _IOLBF, 0);
  PaperTrace();

  // E2b: tau sweep. Note the bound variables w1, w2, w3 live in *distinct*
  // atoms, so the candidate valuation set is the cartesian product of the
  // three w-domains — the compression time O~(prod |R_F|^{u_F}) of
  // Theorem 1 is real work here, which keeps this instance moderate.
  const uint64_t w_dom = 12, xyz_dom = 30;
  const size_t tuples = 3000;
  Database db;
  for (int i = 1; i <= 3; ++i)
    MakeRandomRelation(db, "R" + std::to_string(i),
                       {w_dom, xyz_dom, xyz_dom}, tuples, 500 + i);
  const double n = (double)db.TotalTuples();
  AdornedView view = RunningExampleView();

  // Requests: sampled (w1,w2,w3) combinations.
  std::vector<BoundValuation> requests;
  Rng rng(9);
  for (int i = 0; i < 60; ++i)
    requests.push_back({rng.UniformRange(1, w_dom),
                        rng.UniformRange(1, w_dom),
                        rng.UniformRange(1, w_dom)});

  bench::Banner(
      "E2b: running example tau sweep (Example 5)",
      "u=(1,1,1), alpha=2: space O~(N^3 / tau^2), delay O~(tau); at "
      "tau=sqrt(N) space is O~(N^2)");
  Table table({"tau", "aux space", "dict entries", "tree nodes", "build s",
               "worst delay (ops)", "total TA (ops)", "tuples"});
  bench::BenchReport report("running_example");
  for (double tau : {std::sqrt(n), 8 * std::sqrt(n), 64 * std::sqrt(n),
                     512 * std::sqrt(n)}) {
    CompressedRepOptions copt;
    copt.tau = tau;
    copt.cover = std::vector<double>{1, 1, 1};
    auto rep = CompressedRep::Build(view, db, copt);
    if (!rep.ok()) {
      std::printf("build failed: %s\n", rep.status().message().c_str());
      return 1;
    }
    auto answer = [&](const BoundValuation& vb) {
      return rep.value()->Answer(vb);
    };
    RequestStats s = MeasureRequests(requests, answer);
    const CompressedRepStats& st = rep.value()->stats();
    table.AddRow({StrFormat("%.0f", tau), bench::HumanBytes(st.AuxBytes()),
                  StrFormat("%zu", st.dict_entries),
                  StrFormat("%zu", st.tree_nodes),
                  StrFormat("%.3f", st.build_seconds),
                  StrFormat("%llu", (unsigned long long)s.worst_delay_ops),
                  StrFormat("%llu", (unsigned long long)s.total_ops),
                  StrFormat("%zu", s.total_tuples)});
    report.AddRecord()
        .Set("experiment", "E2b_running_example")
        .Set("structure", "compressed_rep")
        .Set("tau", tau)
        .Set("build_seconds", st.build_seconds)
        .Set("aux_bytes", st.AuxBytes())
        .Set("dict_entries", st.dict_entries)
        .Set("tree_nodes", st.tree_nodes)
        .SetRequestStats("single", s)
        .SetRequestStats("batched", bench::MeasureRequests(
                                        requests, answer, view.num_free(),
                                        256));
  }
  table.Print();
  return 0;
}

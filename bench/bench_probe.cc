// Probe microbench: HashIndex vs SortedIndex point-membership latency.
//
// The index-selection policy routes point probes (Relation::Contains,
// BoundAtom::ContainsValuation, the Algorithm 2 split probe) to the flat
// open-addressed HashIndex and keeps the sorted tries for lex-range work.
// This bench quantifies that choice: for each relation cardinality and
// probe hit rate it measures nanoseconds per probe through both paths —
// the hash plan, and the per-column trie refinement the probe path used
// before — and writes BENCH_probe.json. The access-path counters
// (CostModel::ProbeStats) are recorded alongside as a sanity check that
// the policy actually routed the probes where this file claims.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/cost_model.h"
#include "relational/hash_index.h"
#include "relational/relation.h"
#include "relational/sorted_index.h"
#include "util/rng.h"
#include "util/timer.h"

namespace cqc {
namespace {

constexpr int kArity = 3;

// Membership through the sorted identity trie — the pre-hash probe path.
bool SortedContains(const SortedIndex& idx, TupleSpan t) {
  RowRange r = idx.Root();
  for (int level = 0; level < kArity && !r.empty(); ++level)
    r = idx.Refine(r, level, t[level]);
  return !r.empty();
}

struct ProbeSet {
  std::vector<Value> flat;  // row-major probe tuples
  size_t hits = 0;
};

// `hit_rate` of the probes are rows of `rel`; the rest are in-domain
// tuples verified absent (a realistic miss walks the same value range as a
// hit — an out-of-domain miss would let the trie short-circuit on its
// first binary search and flatter neither path).
ProbeSet MakeProbes(const Relation& rel, const SortedIndex& sorted,
                    size_t count, double hit_rate, uint64_t seed) {
  Rng rng(seed);
  ProbeSet out;
  out.flat.reserve(count * kArity);
  Tuple t(kArity);
  for (size_t i = 0; i < count; ++i) {
    if (rng.NextDouble() < hit_rate) {
      const size_t row = rng.Uniform(rel.size());
      for (int c = 0; c < kArity; ++c) t[c] = rel.At(row, c);
      ++out.hits;
    } else {
      do {
        const size_t row = rng.Uniform(rel.size());
        for (int c = 0; c < kArity; ++c) t[c] = rel.At(row, c);
        t[kArity - 1] = rng.Uniform(rel.size() * 4);
      } while (SortedContains(sorted, t));
    }
    out.flat.insert(out.flat.end(), t.begin(), t.end());
  }
  return out;
}

}  // namespace
}  // namespace cqc

int main() {
  using namespace cqc;
  setvbuf(stdout, nullptr, _IOLBF, 0);
  bench::BenchReport report("probe");
  bench::Banner("probe: HashIndex vs SortedIndex point membership",
                "index policy: point probes pay O(1) expected through the "
                "hash plan instead of O(arity log N) trie refinements");

  bench::Table table({"rows", "hit rate", "hash ns/probe", "batch ns/probe",
                      "sorted ns/probe", "speedup"});

  const size_t kProbes = 1u << 18;
  for (size_t rows : {1000, 10000, 100000, 1000000}) {
    // Random relation (duplicate inserts collapse under set semantics).
    Rng rng(rows);
    Relation rel("R", kArity);
    const uint64_t domain = rows * 4;
    for (size_t i = 0; i < rows; ++i) {
      Tuple t(kArity);
      for (int c = 0; c < kArity; ++c) t[c] = rng.Uniform(domain);
      rel.Insert(t);
    }
    rel.Seal();
    const HashIndex& hash = rel.GetHashIndex();
    std::vector<int> identity{0, 1, 2};
    const SortedIndex& sorted = rel.GetIndex(identity);

    for (double hit_rate : {1.0, 0.5, 0.0}) {
      const ProbeSet probes =
          MakeProbes(rel, sorted, kProbes, hit_rate, rows + 7);
      auto run = [&](auto contains) {
        // Best of 3: min-of-N to shed noise (cf. CompareDrainThroughput).
        double best = 1e300;
        size_t found = 0;
        for (int rep = 0; rep < 3; ++rep) {
          WallTimer t;
          found = 0;
          for (size_t i = 0; i < kProbes; ++i) {
            if (contains(TupleSpan(probes.flat.data() + i * kArity, kArity)))
              ++found;
          }
          best = std::min(best, t.Seconds());
        }
        if (found != probes.hits)
          std::fprintf(stderr, "WARNING: %zu found vs %zu planted\n", found,
                       probes.hits);
        return best / (double)kProbes * 1e9;  // ns per probe
      };

      const IndexSelectionStats before = CostModel::ProbeStats();
      const double hash_ns =
          run([&](TupleSpan t) { return hash.Contains(t); });
      const IndexSelectionStats mid = CostModel::ProbeStats();
      const double sorted_ns =
          run([&](TupleSpan t) { return SortedContains(sorted, t); });
      const IndexSelectionStats after = CostModel::ProbeStats();

      // Batched membership (ContainsBatch, 256-probe blocks): the SIMD
      // group-probe + prefetch path the tombstone filter drains.
      // Best of 9 (vs 3 for the point probes): this is the only gated
      // metric in the report, and a single ContainsBatch sweep is a few
      // milliseconds — short enough that one noisy-neighbor burst on a
      // shared vCPU can shave 20-40% off every rep of a best-of-3.
      std::vector<uint8_t> out(kProbes);
      double batch_best = 1e300;
      for (int rep = 0; rep < 9; ++rep) {
        WallTimer t;
        for (size_t base = 0; base < kProbes; base += 256)
          hash.ContainsBatch(probes.flat.data() + base * kArity,
                             std::min<size_t>(256, kProbes - base),
                             out.data() + base);
        batch_best = std::min(batch_best, t.Seconds());
      }
      const size_t batch_found =
          (size_t)std::count(out.begin(), out.end(), (uint8_t)1);
      if (batch_found != probes.hits)
        std::fprintf(stderr, "WARNING: batch found %zu vs %zu planted\n",
                     batch_found, probes.hits);
      const double hash_batch_ns = batch_best / (double)kProbes * 1e9;

      table.AddRow({StrFormat("%zu", rows), StrFormat("%.1f", hit_rate),
                    StrFormat("%.1f", hash_ns),
                    StrFormat("%.1f", hash_batch_ns),
                    StrFormat("%.1f", sorted_ns),
                    StrFormat("%.2fx", sorted_ns / hash_ns)});
      report.AddRecord()
          .Set("experiment", "probe_latency")
          .Set("rows", (unsigned long long)rows)
          .Set("hit_rate", hit_rate)
          .Set("probes", (unsigned long long)kProbes)
          .Set("hash_ns_per_probe", hash_ns)
          .Set("hash_batch_ns_per_probe", hash_batch_ns)
          .Set("hash_batch_mprobes", 1e3 / hash_batch_ns)
          .Set("sorted_ns_per_probe", sorted_ns)
          .Set("hash_vs_sorted_speedup", sorted_ns / hash_ns)
          .Set("hash_point_probes",
               (unsigned long long)(mid.hash_point_probes -
                                    before.hash_point_probes))
          .Set("sorted_range_seeks",
               (unsigned long long)(after.sorted_range_seeks -
                                    mid.sorted_range_seeks));
    }
  }
  table.Print();
  std::printf("shape check: the hash path is flat across cardinalities while "
              "the sorted path grows with log N.\n");
  return 0;
}

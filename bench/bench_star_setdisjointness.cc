// Experiment E4 (Example 7 + §3.3): star joins, slack, and
// k-SetDisjointness.
//
//   S_n^{b..bf}(x1..xn, z) = R1(x1,z), ..., Rn(xn,z)
//
// Claim: the cover u = (1,..,1) has slack alpha = n on {z}, so space is
// O~(N^n / tau^n) — the slack exponent, not the naive N^n / tau. The same
// structure answers k-SetDisjointness (Q^{b..b} with z projected away) in
// O~(tau), the tradeoff Conjecture 1 says is essentially optimal.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/compressed_rep.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

// Set family engineered for hard requests: pairs of large interleaved
// disjoint sets (ids 1/2, 3/4, ...) plus Zipf background sets.
Relation* MakeHardSets(Database& db, int pairs, int pair_size,
                       uint64_t background_sets, size_t background_tuples) {
  Relation* r = db.AddRelation("R", 2);
  Value next_elem = 1000000;  // keep hard-pair elements disjoint from bg
  for (int p = 0; p < pairs; ++p) {
    Value s1 = 1 + 2 * p, s2 = 2 + 2 * p;
    for (int i = 0; i < pair_size; ++i) {
      r->Insert({s1, next_elem + 2 * (Value)i});
      r->Insert({s2, next_elem + 2 * (Value)i + 1});
    }
    next_elem += 2 * (Value)pair_size;
  }
  Rng rng(77);
  ZipfSampler zipf(background_sets, 0.9);
  for (size_t i = 0; i < background_tuples; ++i) {
    Value s = 100 + zipf.Sample(rng);
    r->Insert({s, rng.UniformRange(1, 5000)});
  }
  r->Seal();
  return r;
}

}  // namespace
}  // namespace cqc

int main() {
  using namespace cqc;
  setvbuf(stdout, nullptr, _IOLBF, 0);
  using bench::Table;

  Database db;
  const int pairs = 6, pair_size = 4000;
  Relation* r = MakeHardSets(db, pairs, pair_size, 200, 30000);
  const double n_sz = (double)r->size();
  std::printf("N = |R| = %zu membership tuples\n", r->size());

  // --- E4a: slack tradeoff on the 2-star (fast set intersection [13]) ---
  bench::Banner("E4a: set intersection S_2^{bbf} (Cohen-Porat special case)",
                "slack alpha = 2: space O~(N^2/tau^2), delay O~(tau)");
  AdornedView view2 = SetIntersectionView();
  std::vector<BoundValuation> requests;
  for (int p = 0; p < pairs; ++p)
    requests.push_back({(Value)(1 + 2 * p), (Value)(2 + 2 * p)});  // empty
  for (Value s = 100; s < 130; ++s)
    requests.push_back({s, s + 1});  // background pairs
  for (int p = 0; p < pairs; ++p)
    requests.push_back({(Value)(1 + 2 * p), (Value)(1 + 2 * p)});  // self

  Table t2({"tau", "aux space", "dict entries", "build s",
            "worst delay (ops)", "total TA (ops)", "tuples"});
  for (double tau : {1.0, 8.0, 64.0, 512.0, 4096.0}) {
    CompressedRepOptions copt;
    copt.tau = tau;
    auto rep = CompressedRep::Build(view2, db, copt);
    if (!rep.ok()) {
      std::printf("build failed: %s\n", rep.status().message().c_str());
      return 1;
    }
    auto s = bench::MeasureRequests(
        requests,
        [&](const BoundValuation& vb) { return rep.value()->Answer(vb); });
    const CompressedRepStats& st = rep.value()->stats();
    t2.AddRow({StrFormat("%.0f", tau), bench::HumanBytes(st.AuxBytes()),
               StrFormat("%zu", st.dict_entries),
               StrFormat("%.3f", st.build_seconds),
               StrFormat("%llu", (unsigned long long)s.worst_delay_ops),
               StrFormat("%llu", (unsigned long long)s.total_ops),
               StrFormat("%zu", s.total_tuples)});
  }
  t2.Print();
  std::printf("expected slack alpha = 2 (space should fall ~tau^{-2}).\n");

  // --- E4b: 3-SetDisjointness through the full view ---
  // The candidate table is cubic in the number of sets (one entry per
  // (s1,s2,s3) combination can be heavy), so this instance uses fewer,
  // smaller sets than E4a.
  bench::Banner("E4b: 3-SetDisjointness via Q^{bbbf} (Conjecture 1 shape)",
                "answer time O~(tau) with space O~(N^3/tau^3)");
  Database db3;
  const int pairs3 = 4, pair_size3 = 800;
  MakeHardSets(db3, pairs3, pair_size3, 40, 5000);
  AdornedView view3 = SetDisjointnessView(3);
  std::vector<BoundValuation> requests3;
  for (int p = 0; p < pairs3; ++p)
    requests3.push_back(
        {(Value)(1 + 2 * p), (Value)(2 + 2 * p), (Value)(1 + 2 * p)});
  for (Value s = 100; s < 120; ++s) requests3.push_back({s, s + 1, s + 2});

  Table t3({"tau", "aux space", "dict entries", "build s",
            "worst boolean answer (ops)"});
  for (double tau : {16.0, 128.0, 1024.0}) {
    CompressedRepOptions copt;
    copt.tau = tau;
    auto rep = CompressedRep::Build(view3, db3, copt);
    if (!rep.ok()) {
      std::printf("build failed: %s\n", rep.status().message().c_str());
      return 1;
    }
    uint64_t worst = 0;
    for (const BoundValuation& vb : requests3) {
      uint64_t before = ops::Now();
      rep.value()->AnswerExists(vb);
      worst = std::max(worst, ops::Now() - before);
    }
    const CompressedRepStats& st = rep.value()->stats();
    t3.AddRow({StrFormat("%.0f", tau), bench::HumanBytes(st.AuxBytes()),
               StrFormat("%zu", st.dict_entries),
               StrFormat("%.3f", st.build_seconds),
               StrFormat("%llu", (unsigned long long)worst)});
  }
  t3.Print();
  std::printf(
      "\nshape check: the boolean answer cost tracks tau while the\n"
      "auxiliary space falls with a power ~alpha = k of tau.\n");
  return 0;
}

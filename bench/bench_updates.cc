// Experiment E12 (§8 extension): maintenance cost under mutations.
//
// Part 1 measures amortized insert cost across rebuild thresholds and the
// answering overhead a pending delta adds (the original insert-only E12,
// now with a 25% deletion mix). Part 2 is the serving headline: sustained
// query throughput on the triangle view while a configurable churn rate
// (mutations per request, half inserts / half deletes) flows through the
// plan-layer update pipeline — planner-priced updatable structure,
// AnswerRep::ApplyDelta, amortized snapshot folds. BENCH_updates.json
// records one drain_single_mtps series per churn rate; the perf gate
// (tools/bench_compare.py) compares them against bench/baselines/.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/updatable_rep.h"
#include "plan/planner.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace {

using namespace cqc;

void RunRebuildFractionTable() {
  using bench::Table;
  const int num_ops = 2000;
  Table table({"rebuild fraction", "rebuilds", "total update s", "us/update",
               "answer s (200 reqs)", "worst delay (ops)"});
  for (double fraction : {0.05, 0.2, 0.5, 1e9}) {
    Database db;
    MakeRandomGraph(db, "R", 300, 8000, true, 11);
    AdornedView view = TriangleView("bfb");
    UpdatableRepOptions options;
    options.rep.tau = 64.0;
    options.rebuild_fraction = fraction;
    auto rep = UpdatableRep::Build(view, db, options).value();

    Rng rng(3);
    WallTimer update_timer;
    for (int i = 0; i < num_ops; ++i) {
      Value a = rng.UniformRange(1, 300), b = rng.UniformRange(1, 300);
      if (a == b) continue;
      // 3:1 insert:delete mix — the delta carries tombstone mass too.
      if (i % 4 == 3)
        rep->Delete("R", {a, b}).ok();
      else
        rep->Insert("R", {a, b}).ok();
    }
    double update_s = update_timer.Seconds();

    std::vector<BoundValuation> requests;
    for (int i = 0; i < 200; ++i) {
      Value a = rng.UniformRange(1, 300), b = rng.UniformRange(1, 300);
      if (a != b) requests.push_back({a, b});
    }
    WallTimer answer_timer;
    auto s = bench::MeasureRequests(
        requests, [&](const BoundValuation& vb) { return rep->Answer(vb); });
    double answer_s = answer_timer.Seconds();

    table.AddRow(
        {fraction > 1e8 ? "never" : StrFormat("%.2f", fraction),
         StrFormat("%d", rep->num_rebuilds()),
         StrFormat("%.3f", update_s),
         StrFormat("%.1f", update_s * 1e6 / num_ops),
         StrFormat("%.3f", answer_s),
         StrFormat("%llu", (unsigned long long)s.worst_delay_ops)});
  }
  table.Print();
  std::printf(
      "\nreading: smaller fractions rebuild more often (costlier updates,\n"
      "cheaper answers); 'never' leaves all work to the per-request delta\n"
      "joins and tombstone filters.\n");
}

void RunSustainedChurnSweep(bench::BenchReport& report) {
  using bench::Table;
  const int num_requests = 1500;
  Table table({"churn (ops/req)", "plan f", "mutations", "rebuilds",
               "tuples", "total s", "sustained Mtps", "delay p95 (us)"});
  for (double churn : {0.05, 0.2, 1.0}) {
    Database db;
    MakeRandomGraph(db, "R", 300, 8000, true, 11);
    // One bound variable: each request drains the node's full triangle
    // neighborhood, so throughput is tuple-dominated, not setup-dominated.
    AdornedView view = TriangleView("bff");

    // Through the plan layer: the planner prices the churn rate and picks
    // the rebuild fraction; the build returns the AnswerRep adapter.
    Planner planner(&db);
    PlannerOptions popt;
    popt.consider_compressed = popt.consider_decomposed = false;
    popt.consider_direct = popt.consider_materialized = false;
    popt.churn_per_request = churn;
    Plan plan = planner.PlanView(view, popt).value();
    auto rep = planner.BuildPlan(view, plan).value();
    auto* up = dynamic_cast<UpdatableAnswerRep*>(rep.get());

    Rng rng(17);
    bench::RequestStats stats;
    double carry = 0;  // fractional churn accumulates across requests
    size_t mutations = 0;
    WallTimer total;
    for (int i = 0; i < num_requests; ++i) {
      carry += churn;
      UpdateBatch batch;
      while (carry >= 1.0) {
        carry -= 1.0;
        Value a = rng.UniformRange(1, 300), b = rng.UniformRange(1, 300);
        if (a == b) continue;
        batch.push_back(mutations % 2 == 0 ? UpdateOp::Insert("R", {a, b})
                                           : UpdateOp::Delete("R", {a, b}));
        ++mutations;
      }
      if (!batch.empty()) rep->ApplyDelta(batch).ok();
      auto e = rep->Answer({rng.UniformRange(1, 300)}).value();
      stats.Add(MeasureEnumeration(*e));
    }
    const double total_s = total.Seconds();
    const double mtps =
        total_s > 0 ? (double)stats.total_tuples / total_s / 1e6 : 0;
    const int rebuilds = up->underlying().num_rebuilds();

    table.AddRow({StrFormat("%.2f", churn),
                  StrFormat("%.3g", plan.spec.updatable.rebuild_fraction),
                  StrFormat("%zu", mutations), StrFormat("%d", rebuilds),
                  StrFormat("%zu", stats.total_tuples),
                  StrFormat("%.3f", total_s), StrFormat("%.2f", mtps),
                  StrFormat("%.1f",
                            bench::Percentile(stats.request_delay_us, 95))});

    auto& rec = report.AddRecord();
    rec.Set("experiment", "triangle_sustained_churn");
    rec.Set("structure", StrFormat("updatable@churn=%.2f", churn));
    rec.Set("churn_per_request", churn);
    rec.Set("rebuild_fraction", plan.spec.updatable.rebuild_fraction);
    rec.Set("requests", (unsigned long long)num_requests);
    rec.Set("mutations", (unsigned long long)mutations);
    rec.Set("rebuilds", rebuilds);
    rec.Set("total_seconds", total_s);
    rec.Set("drain_single_mtps", mtps);
    rec.SetRequestStats("single", stats);
  }
  table.Print();
  std::printf(
      "\nreading: sustained Mtps folds mutation cost, tombstone filtering,\n"
      "delta joins, and amortized snapshot folds into one serving number;\n"
      "higher churn shifts work from enumeration to maintenance.\n");
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);

  bench::Banner("E12: maintenance under updates (§8 extension)",
                "amortized update ~ rebuild cost * fraction; delta answering "
                "adds O~(|delta| join) per request; deletions filter via "
                "tombstone probes");
  RunRebuildFractionTable();

  bench::Banner("E12b: sustained serving throughput under churn",
                "the update pipeline keeps query throughput within a "
                "constant factor of the static structure at moderate churn");
  cqc::bench::BenchReport report("updates");
  RunSustainedChurnSweep(report);
  return 0;
}

// Experiment E12 (§8 extension): insert-only maintenance cost.
//
// Measures (a) amortized insert cost across rebuild thresholds and (b) the
// answering overhead the pending delta adds, on the triangle view.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/updatable_rep.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/catalog.h"
#include "workload/generators.h"

int main() {
  using namespace cqc;
  setvbuf(stdout, nullptr, _IOLBF, 0);
  using bench::Table;

  bench::Banner("E12: insert-only maintenance (§8 extension)",
                "amortized insert ~ rebuild cost * fraction; delta answering "
                "adds O~(|delta| join) per request");

  const int num_inserts = 2000;
  Table table({"rebuild fraction", "rebuilds", "total insert s",
               "us/insert", "answer s (200 reqs)", "worst delay (ops)"});
  for (double fraction : {0.05, 0.2, 0.5, 1e9}) {
    Database db;
    MakeRandomGraph(db, "R", 300, 8000, true, 11);
    AdornedView view = TriangleView("bfb");
    UpdatableRepOptions options;
    options.rep.tau = 64.0;
    options.rebuild_fraction = fraction;
    auto rep = UpdatableRep::Build(view, db, options).value();

    Rng rng(3);
    WallTimer insert_timer;
    for (int i = 0; i < num_inserts; ++i) {
      Value a = rng.UniformRange(1, 300), b = rng.UniformRange(1, 300);
      if (a == b) continue;
      rep->Insert("R", {a, b}).ok();
    }
    double insert_s = insert_timer.Seconds();

    std::vector<BoundValuation> requests;
    for (int i = 0; i < 200; ++i) {
      Value a = rng.UniformRange(1, 300), b = rng.UniformRange(1, 300);
      if (a != b) requests.push_back({a, b});
    }
    WallTimer answer_timer;
    auto s = bench::MeasureRequests(
        requests, [&](const BoundValuation& vb) { return rep->Answer(vb); });
    double answer_s = answer_timer.Seconds();

    table.AddRow(
        {fraction > 1e8 ? "never" : StrFormat("%.2f", fraction),
         StrFormat("%d", rep->num_rebuilds()),
         StrFormat("%.3f", insert_s),
         StrFormat("%.1f", insert_s * 1e6 / num_inserts),
         StrFormat("%.3f", answer_s),
         StrFormat("%llu", (unsigned long long)s.worst_delay_ops)});
  }
  table.Print();
  std::printf(
      "\nreading: smaller fractions rebuild more often (costlier inserts,\n"
      "cheaper answers); 'never' leaves all work to the per-request delta\n"
      "joins.\n");
  return 0;
}

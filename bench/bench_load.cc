// bench_load: cold-start latency of the CQCREP05 container — the heap
// reader vs the zero-copy mmap loader.
//
// The fixture is built to make load cost visible: one wide relation with
// four 48-bit bound columns and a small free domain, tau huge enough that
// the delay-balanced tree is a single leaf. The file is then dominated by
// the packed candidate pool (~24 bytes/row), so a heap load pays O(file
// bytes) — read + copy + eager dictionary slot construction — while the
// mmap open validates the header and block directory and borrows every
// column in place, O(header) work regardless of file size.
//
// The gate (exit 1 on failure): mmap open must be at least
// CQC_LOAD_MIN_SPEEDUP (default 50) times faster than the heap load on a
// >= 100 MB file. Resident-byte accounting is reported alongside: a fresh
// mapping should charge far less than the file until probes touch pages.
//
// Env knobs: CQC_LOAD_ROWS (default 4,600,000 -> ~110 MB file),
// CQC_LOAD_MIN_SPEEDUP (default 50).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/compressed_rep.h"
#include "core/serialization.h"
#include "query/parser.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? (size_t)std::strtoull(v, nullptr, 10)
                                    : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtod(v, nullptr) : fallback;
}

}  // namespace

int main() {
  using namespace cqc;
  setvbuf(stdout, nullptr, _IOLBF, 0);
  bench::BenchReport report("load");
  bench::Banner("load: CQCREP05 cold-start, heap reader vs zero-copy mmap",
                "restart durability: a persisted structure must be servable "
                "again in O(header) time, not O(structure size)");

  const size_t kRows = EnvSize("CQC_LOAD_ROWS", 4'600'000);
  const double kMinSpeedup = EnvDouble("CQC_LOAD_MIN_SPEEDUP", 50.0);
  constexpr int kRepeats = 3;

  // Four 48-bit bound columns (collision-free in practice), one free
  // column over a 512-value domain.
  Database db;
  Relation* r = db.AddRelation("R", 5);
  Rng rng(42);
  BoundValuation probe_vb;
  {
    Tuple t(5);
    for (size_t i = 0; i < kRows; ++i) {
      for (int c = 0; c < 4; ++c) t[c] = rng.Uniform(uint64_t{1} << 48);
      t[4] = rng.Uniform(512);
      if (i == 0) probe_vb.assign(t.begin(), t.begin() + 4);
      r->Insert(t);
    }
    r->Seal();
  }

  auto view = ParseAdornedView("Q^bbbbf(a,b,c,d,e) = R(a,b,c,d,e)");
  if (!view.ok()) {
    std::fprintf(stderr, "view: %s\n", view.status().message().c_str());
    return 1;
  }
  CompressedRepOptions copt;
  copt.tau = 1e18;  // one leaf: the candidate pool is the whole file
  WallTimer build_timer;
  auto built = CompressedRep::Build(view.value(), db, copt);
  if (!built.ok()) {
    std::fprintf(stderr, "build: %s\n", built.status().message().c_str());
    return 1;
  }
  const double build_seconds = build_timer.Seconds();

  const std::string path = "bench_load.cqcrep";
  {
    Status s = SaveCompressedRep(*built.value(), path);
    if (!s.ok()) {
      std::fprintf(stderr, "save: %s\n", s.message().c_str());
      return 1;
    }
  }
  size_t file_bytes = 0;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    file_bytes = (size_t)in.tellg();
  }
  std::printf("rows=%zu  file=%.1f MB  build=%.2fs  tree_nodes=%zu\n", kRows,
              file_bytes / 1e6, build_seconds, built.value()->stats().tree_nodes);

  // Min-of-N loads through each path; first-probe latency and resident
  // charge measured on the last instance.
  double heap_open_s = 1e300, mmap_open_s = 1e300;
  std::unique_ptr<CompressedRep> heap_rep, mmap_rep;
  for (int i = 0; i < kRepeats; ++i) {
    WallTimer t;
    auto loaded = LoadCompressedRep(view.value(), db, path);
    const double s = t.Seconds();
    if (!loaded.ok()) {
      std::fprintf(stderr, "heap load: %s\n",
                   loaded.status().message().c_str());
      return 1;
    }
    heap_open_s = std::min(heap_open_s, s);
    heap_rep = std::move(loaded).value();
  }
  for (int i = 0; i < kRepeats; ++i) {
    WallTimer t;
    auto mapped = MmapCompressedRep(view.value(), db, path);
    const double s = t.Seconds();
    if (!mapped.ok()) {
      std::fprintf(stderr, "mmap load: %s\n",
                   mapped.status().message().c_str());
      return 1;
    }
    mmap_open_s = std::min(mmap_open_s, s);
    mmap_rep = std::move(mapped).value();
  }
  const size_t mmap_resident_after_open = mmap_rep->ResidentBytes();

  auto first_probe_us = [&](const CompressedRep& rep) {
    WallTimer t;
    const std::vector<Tuple> got = CollectAll(*rep.Answer(probe_vb));
    if (got.empty()) {
      std::fprintf(stderr, "probe returned no tuples — fixture broken\n");
      std::exit(1);
    }
    return t.Micros();
  };
  const double heap_probe_us = first_probe_us(*heap_rep);
  const double mmap_probe_us = first_probe_us(*mmap_rep);
  const size_t mmap_resident_after_probe = mmap_rep->ResidentBytes();

  const double speedup = heap_open_s / mmap_open_s;
  bench::Table table({"loader", "open ms", "first probe us", "resident MB"});
  table.AddRow({"heap", StrFormat("%.2f", heap_open_s * 1e3),
                StrFormat("%.1f", heap_probe_us),
                StrFormat("%.1f", heap_rep->ResidentBytes() / 1e6)});
  table.AddRow({"mmap", StrFormat("%.2f", mmap_open_s * 1e3),
                StrFormat("%.1f", mmap_probe_us),
                StrFormat("%.1f", mmap_resident_after_probe / 1e6)});
  table.Print();
  std::printf("mmap speedup over heap: %.1fx (gate: >= %.0fx)\n", speedup,
              kMinSpeedup);
  std::printf("mmap resident after open: %.2f MB of %.1f MB mapped\n",
              mmap_resident_after_open / 1e6,
              mmap_rep->stats().mapped_bytes / 1e6);

  report.AddRecord()
      .Set("experiment", "cold_load")
      .Set("structure", "heap")
      .Set("rows", (unsigned long long)kRows)
      .Set("file_bytes", (unsigned long long)file_bytes)
      .Set("open_seconds", heap_open_s)
      .Set("first_probe_us", heap_probe_us)
      .Set("resident_bytes", (unsigned long long)heap_rep->ResidentBytes());
  report.AddRecord()
      .Set("experiment", "cold_load")
      .Set("structure", "mmap")
      .Set("rows", (unsigned long long)kRows)
      .Set("file_bytes", (unsigned long long)file_bytes)
      .Set("open_seconds", mmap_open_s)
      .Set("first_probe_us", mmap_probe_us)
      .Set("resident_bytes_after_open",
           (unsigned long long)mmap_resident_after_open)
      .Set("resident_bytes_after_probe",
           (unsigned long long)mmap_resident_after_probe)
      .Set("speedup_vs_heap", speedup)
      .Set("gate_min_speedup", kMinSpeedup);
  report.Write();

  std::remove(path.c_str());
  if (file_bytes < 100u * 1000 * 1000 && EnvSize("CQC_LOAD_ROWS", 0) == 0) {
    std::fprintf(stderr, "FAIL: default fixture produced a %.1f MB file "
                 "(acceptance wants >= 100 MB)\n", file_bytes / 1e6);
    return 1;
  }
  if (speedup < kMinSpeedup) {
    std::fprintf(stderr,
                 "FAIL: mmap open only %.1fx faster than heap load "
                 "(gate %.0fx) — the zero-copy path is reading the file\n",
                 speedup, kMinSpeedup);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

// Experiment E1 (Example 1 / Example 2): the headline triangle tradeoff.
//
//   V^bfb(x,y,z) = R(x,y), R(y,z), R(z,x)
//
// Claim: for any tau, a data structure with space O~(N^{3/2} / tau) and
// delay O~(tau); the extremes are full materialization (Omega(N^{3/2})
// space, O(1) delay) and direct evaluation (linear space, up-to-Omega(N)
// delay). The workload mixes a triangle-dense tripartite core (which makes
// the output Theta(N^{3/2})) with interleaved "hub" pairs whose common
// neighborhood is empty but expensive to refute — the set-intersection
// hard case that separates the tau settings.
#include <cmath>
#include <cstdio>

#include "baseline/direct_eval.h"
#include "baseline/materialized_view.h"
#include "bench/bench_common.h"
#include "core/compressed_rep.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

using bench::Banner;
using bench::HumanBytes;
using bench::MeasureRequests;
using bench::RequestStats;
using bench::Table;

// Tripartite triangle core + `hubs` pairs of interleaved disjoint hub
// neighborhoods attached to both ends of an edge.
Relation* MakeWorkloadGraph(Database& db, uint64_t m, int hubs,
                            int hub_degree) {
  Relation* r = db.AddRelation("R", 2);
  auto edge = [&](Value a, Value b) {
    r->Insert({a, b});
    r->Insert({b, a});
  };
  for (Value a = 0; a < m; ++a)
    for (Value b = 0; b < m; ++b) {
      edge(1 + a, m + 1 + b);
      edge(m + 1 + a, 2 * m + 1 + b);
      edge(2 * m + 1 + a, 1 + b);
    }
  // Hub pairs live on fresh vertex ids above 3m; their neighborhoods are
  // interleaved and disjoint, so N(h1) and N(h2) intersect emptily but
  // every refutation step finds the next candidate adjacent.
  Value next = 3 * m + 1;
  for (int h = 0; h < hubs; ++h) {
    Value h1 = next++, h2 = next++;
    edge(h1, h2);  // the bound pair itself must be an edge to be queried
    for (int i = 0; i < hub_degree; ++i) {
      Value even = next + 2 * (Value)i;
      Value odd = next + 2 * (Value)i + 1;
      edge(h1, even);
      edge(h2, odd);
    }
    next += 2 * (Value)hub_degree;
  }
  r->Seal();
  return r;
}

std::vector<BoundValuation> MakeRequests(const Relation& r, uint64_t m,
                                         int hubs, int hub_degree) {
  std::vector<BoundValuation> out;
  // Adjacent tripartite pairs (each has exactly m mutual neighbors).
  for (Value a = 1; a <= std::min<uint64_t>(m, 20); ++a)
    out.push_back({a, m + a});
  // Hub pairs (empty but hard).
  Value next = 3 * m + 1;
  for (int h = 0; h < hubs; ++h) {
    out.push_back({next, next + 1});
    next += 2 + 2 * (Value)hub_degree;
  }
  return out;
}

}  // namespace
}  // namespace cqc

int main() {
  using namespace cqc;
  setvbuf(stdout, nullptr, _IOLBF, 0);
  const uint64_t m = 48;          // |R| = 6 m^2 + hub edges
  const int hubs = 8;
  const int hub_degree = 2000;
  Database db;
  Relation* r = MakeWorkloadGraph(db, m, hubs, hub_degree);
  const double n = (double)r->size();
  std::printf("N = |R| = %zu edges, %llu tripartite nodes + %d hub pairs\n",
              r->size(), (unsigned long long)(3 * m), hubs);

  AdornedView view = TriangleView("bfb");
  auto requests = MakeRequests(*r, m, hubs, hub_degree);
  bench::BenchReport report("triangle_tradeoff");

  Banner("E1: triangle V^bfb space/delay tradeoff (Example 1)",
         "space O~(N^{3/2}/tau), delay O~(tau); extremes bracket it");

  Table table({"structure", "tau", "aux space", "dict entries", "build s",
               "worst delay (ops)", "total TA (ops)", "tuples"});

  // Extreme 1: materialized view.
  {
    auto mv = MaterializedView::Build(view, db);
    RequestStats s = MeasureRequests(
        requests, [&](const BoundValuation& vb) {
          return mv.value()->Answer(vb);
        });
    table.AddRow({"materialized", "-", HumanBytes(mv.value()->SpaceBytes()),
                  StrFormat("%zu", mv.value()->num_tuples()),
                  StrFormat("%.3f", mv.value()->build_seconds()),
                  StrFormat("%llu", (unsigned long long)s.worst_delay_ops),
                  StrFormat("%llu", (unsigned long long)s.total_ops),
                  StrFormat("%zu", s.total_tuples)});
    report.AddRecord()
        .Set("experiment", "E1_triangle_tradeoff")
        .Set("structure", "materialized_view")
        .Set("build_seconds", mv.value()->build_seconds())
        .Set("aux_bytes", mv.value()->SpaceBytes())
        .SetRequestStats("single", s);
  }
  // The tunable structure across tau.
  for (double tau : {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0}) {
    CompressedRepOptions copt;
    copt.tau = tau;
    auto rep = CompressedRep::Build(view, db, copt);
    if (!rep.ok()) {
      std::printf("build failed: %s\n", rep.status().message().c_str());
      return 1;
    }
    RequestStats s = MeasureRequests(
        requests, [&](const BoundValuation& vb) {
          return rep.value()->Answer(vb);
        });
    const CompressedRepStats& st = rep.value()->stats();
    table.AddRow({"compressed", StrFormat("%.0f", tau),
                  HumanBytes(st.AuxBytes()),
                  StrFormat("%zu", st.dict_entries),
                  StrFormat("%.3f", st.build_seconds),
                  StrFormat("%llu", (unsigned long long)s.worst_delay_ops),
                  StrFormat("%llu", (unsigned long long)s.total_ops),
                  StrFormat("%zu", s.total_tuples)});
    report.AddRecord()
        .Set("experiment", "E1_triangle_tradeoff")
        .Set("structure", "compressed_rep")
        .Set("tau", tau)
        .Set("build_seconds", st.build_seconds)
        .Set("aux_bytes", st.AuxBytes())
        .Set("dict_entries", st.dict_entries)
        .Set("tree_nodes", st.tree_nodes)
        .SetRequestStats("single", s)
        .SetRequestStats("batched",
                         bench::MeasureRequests(
                             requests,
                             [&](const BoundValuation& vb) {
                               return rep.value()->Answer(vb);
                             },
                             view.num_free(), 256));
  }
  // Extreme 2: direct evaluation.
  {
    auto de = DirectEval::Build(view, db);
    RequestStats s = MeasureRequests(
        requests, [&](const BoundValuation& vb) {
          return de.value()->Answer(vb);
        });
    table.AddRow({"direct eval", "inf", HumanBytes(de.value()->SpaceBytes()),
                  "-", StrFormat("%.3f", de.value()->build_seconds()),
                  StrFormat("%llu", (unsigned long long)s.worst_delay_ops),
                  StrFormat("%llu", (unsigned long long)s.total_ops),
                  StrFormat("%zu", s.total_tuples)});
    report.AddRecord()
        .Set("experiment", "E1_triangle_tradeoff")
        .Set("structure", "direct_eval")
        .Set("build_seconds", de.value()->build_seconds())
        .Set("aux_bytes", de.value()->SpaceBytes())
        .SetRequestStats("single", s);
  }
  table.Print();
  std::printf(
      "\nshape check: aux space should fall ~linearly in tau; worst delay\n"
      "should grow with tau toward the direct-eval extreme (N^{1/2} = %.0f\n"
      "is the paper's linear-space delay for this query).\n",
      std::sqrt(n));
  return 0;
}

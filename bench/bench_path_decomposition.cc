// Experiment E5 (Example 10): Theorem 1 vs Theorem 2 on path queries
//
//   P_n^{bf..fb}(x1..x_{n+1}) = R1(x1,x2), ..., Rn(xn,x_{n+1})
//
// Claim: Theorem 1 alone gives space O~(|D|^{ceil((n+1)/2)}/tau); the
// zig-zag connex decomposition (bags {x1,x2,xn,x_{n+1}}, ...) with a
// uniform delay assignment gives space O~(|D|^2/tau) at delay
// O~(tau^{floor(n/2)}): for long paths Theorem 2 wins decisively at equal
// space.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/compressed_rep.h"
#include "decomposition/connex_builder.h"
#include "decomposition/decomposed_rep.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

int main() {
  using namespace cqc;
  setvbuf(stdout, nullptr, _IOLBF, 0);
  using bench::Table;

  const int n = 4;
  const uint64_t nodes = 90;
  const size_t edges = 2500;
  Database db;
  auto rels = MakePathRelations(db, "R", n, nodes, edges, 31337);
  const double d_size = (double)db.TotalTuples();
  std::printf("P_%d with |D| = %.0f (%zu edges per relation)\n", n, d_size,
              edges);

  AdornedView view = PathView(n);
  std::vector<VarId> path_vars;
  for (int i = 1; i <= n + 1; ++i)
    path_vars.push_back(view.cq().FindVar("x" + std::to_string(i)));
  TreeDecomposition td = BuildZigZagPath(path_vars);

  // Requests: endpoints of existing paths (non-empty) + random (often
  // empty but possibly expensive).
  std::vector<BoundValuation> requests;
  const Relation* r1 = db.Find("R1");
  const Relation* rn = db.Find("R" + std::to_string(n));
  Rng rng(4);
  for (int i = 0; i < 25; ++i) {
    requests.push_back({r1->At(rng.Uniform(r1->size()), 0),
                        rn->At(rng.Uniform(rn->size()), 1)});
    requests.push_back(
        {rng.UniformRange(1, nodes), rng.UniformRange(1, nodes)});
  }

  bench::Banner(
      "E5: path query P_n, Theorem 1 vs Theorem 2 (Example 10)",
      StrFormat("Thm1: space O~(|D|^%d/tau); Thm2 zig-zag: space "
                "O~(|D|^2/tau) with delay O~(tau^%d)",
                (n + 2) / 2, n / 2));

  Table table({"structure", "knob", "aux space", "build s",
               "worst delay (ops)", "total TA (ops)", "tuples"});
  for (double tau : {32.0, 256.0, 2048.0}) {
    CompressedRepOptions copt;
    copt.tau = tau;
    auto rep = CompressedRep::Build(view, db, copt);
    if (!rep.ok()) {
      std::printf("thm1 build failed: %s\n", rep.status().message().c_str());
      return 1;
    }
    auto s = bench::MeasureRequests(
        requests,
        [&](const BoundValuation& vb) { return rep.value()->Answer(vb); });
    table.AddRow({"thm1", StrFormat("tau=%.0f", tau),
                  bench::HumanBytes(rep.value()->stats().AuxBytes()),
                  StrFormat("%.3f", rep.value()->stats().build_seconds),
                  StrFormat("%llu", (unsigned long long)s.worst_delay_ops),
                  StrFormat("%llu", (unsigned long long)s.total_ops),
                  StrFormat("%zu", s.total_tuples)});
  }
  Hypergraph h(view.cq());
  auto thm2_row = [&](const char* label, const std::string& knob,
                      const DelayAssignment& delta) -> bool {
    DecomposedRepOptions dopt;
    dopt.delta = delta;
    auto rep = DecomposedRep::Build(view, db, td, dopt);
    if (!rep.ok()) {
      std::printf("thm2 build failed: %s\n", rep.status().message().c_str());
      return false;
    }
    auto s = bench::MeasureRequests(
        requests,
        [&](const BoundValuation& vb) { return rep.value()->Answer(vb); });
    const DecompositionMetrics& m = rep.value()->stats().metrics;
    table.AddRow(
        {label, StrFormat("%s (w=%.2f,h=%.2f)", knob.c_str(), m.width,
                          m.height),
         bench::HumanBytes(rep.value()->stats().total_aux_bytes),
         StrFormat("%.3f", rep.value()->stats().build_seconds),
         StrFormat("%llu", (unsigned long long)s.worst_delay_ops),
         StrFormat("%llu", (unsigned long long)s.total_ops),
         StrFormat("%zu", s.total_tuples)});
    return true;
  };
  for (double delta : {0.0, 0.15, 0.3, 0.45}) {
    if (!thm2_row("thm2-zigzag", StrFormat("delta=%.2f", delta),
                  DelayAssignment::Uniform(td, delta)))
      return 1;
  }
  // §6 with the decomposition given: per-bag MinDelayCover under a space
  // budget (the optimizer may give different bags different delays).
  for (double budget : {1.4, 1.7}) {
    DelayAssignment opt = OptimizeDelayAssignment(
        td, h, std::log(d_size), budget * std::log(d_size));
    if (!thm2_row("thm2-optimized", StrFormat("budget=N^%.1f", budget), opt))
      return 1;
  }
  table.Print();
  std::printf(
      "\nshape check: at comparable worst delay, thm2-zigzag aux space\n"
      "should undercut thm1 (the |D|^2 vs |D|^{ceil((n+1)/2)} gap).\n");
  return 0;
}

// Experiment E9 (Fig. 2, Examples 8-9, 16-17, Appendix D): width notions.
//
// Prints fhw, fhw(H | V_b), and the delta-width/height of the paper's
// decompositions, checking each worked number.
#include <cstdio>

#include "bench/bench_common.h"
#include "decomposition/connex_builder.h"
#include "decomposition/delay_assignment.h"
#include "query/parser.h"
#include "workload/catalog.h"

namespace {

cqc::ConjunctiveQuery Parse(const std::string& text) {
  auto q = cqc::ParseConjunctiveQuery(text);
  CQC_CHECK(q.ok()) << q.status().message();
  return std::move(q).value();
}

}  // namespace

int main() {
  using namespace cqc;
  setvbuf(stdout, nullptr, _IOLBF, 0);
  using bench::Table;

  bench::Banner("E9: connex width landscape",
                "fhw(H|Vb) vs fhw: Ex. 9 gives 5/3 & height 1/2; Ex. 16 "
                "gives 2 > fhw = 1; Ex. 17 gives 3/2 < fhw = 2");

  Table table({"case", "quantity", "computed", "paper"});

  {  // Example 9 / Figure 2 right.
    ConjunctiveQuery cq = Parse(
        "Q(v1,v2,v3,v4,v5,v6,v7) = R1(v1,v2), R2(v2,v3), R3(v3,v4), "
        "R4(v4,v5), R5(v5,v6), R6(v6,v7)");
    auto v = [&](int i) {
      return VarBit(cq.FindVar("v" + std::to_string(i)));
    };
    Hypergraph h(cq);
    TreeDecomposition td;
    int root = td.AddNode(v(1) | v(5) | v(6));
    int t1 = td.AddNode(v(2) | v(4) | v(1) | v(5));
    int t2 = td.AddNode(v(3) | v(2) | v(4));
    int t3 = td.AddNode(v(7) | v(6));
    td.AddEdge(root, t1);
    td.AddEdge(t1, t2);
    td.AddEdge(root, t3);
    td.Finalize(root);
    DelayAssignment delta = DelayAssignment::Zero(td);
    delta.delta[t1] = 1.0 / 3.0;
    delta.delta[t2] = 1.0 / 6.0;
    DecompositionMetrics m = ComputeMetrics(td, h, delta);
    table.AddRow({"Ex.9 path-6, C={v1,v5,v6}", "delta-width",
                  StrFormat("%.4f", m.width), "5/3 = 1.6667"});
    table.AddRow({"", "delta-height", StrFormat("%.4f", m.height), "1/2"});
    table.AddRow({"", "u*", StrFormat("%.4f", m.u_star), "2"});
  }
  {  // Example 16.
    ConjunctiveQuery cq = Parse("Q(x,y,z) = R(x,y), S(y,z)");
    Hypergraph h(cq);
    VarSet bound = VarBit(cq.FindVar("x")) | VarBit(cq.FindVar("z"));
    auto c1 = SearchConnexDecomposition(h, bound);
    auto c2 = SearchConnexDecomposition(h, 0);
    table.AddRow({"Ex.16 R(x,y),S(y,z)", "fhw(H|{x,z})",
                  StrFormat("%.4f", c1.value().width), "2"});
    table.AddRow({"", "fhw(H)", StrFormat("%.4f", c2.value().width), "1"});
  }
  {  // Example 17 / Figure 7.
    ConjunctiveQuery cq = Parse(
        "Q(v1,v2,v3,v4,v5) = R(v1,v2), S(v2,v3), T(v3,v4), U(v4,v1), "
        "V(v2,v5), W(v1,v5)");
    auto v = [&](int i) {
      return VarBit(cq.FindVar("v" + std::to_string(i)));
    };
    Hypergraph h(cq);
    VarSet bound = v(1) | v(2) | v(3) | v(4);
    TreeDecomposition td;
    int root = td.AddNode(bound);
    int t1 = td.AddNode(v(5) | v(1) | v(2));
    td.AddEdge(root, t1);
    td.Finalize(root);
    DecompositionMetrics m =
        ComputeMetrics(td, h, DelayAssignment::Zero(td));
    table.AddRow({"Ex.17 Fig.7", "fhw(H|C)", StrFormat("%.4f", m.width),
                  "3/2"});
  }
  {  // Triangle adornments.
    AdornedView bfb = TriangleView("bfb");
    Hypergraph h(bfb.cq());
    auto c = SearchConnexDecomposition(h, bfb.bound_set());
    table.AddRow({"triangle bfb", "fhw(H|{x,z})",
                  StrFormat("%.4f", c.value().width), "3/2"});
    auto full = SearchConnexDecomposition(h, 0);
    table.AddRow({"triangle fff", "fhw(H)",
                  StrFormat("%.4f", full.value().width), "3/2"});
  }
  {  // Zig-zag path widths (Example 10).
    for (int n : {4, 6}) {
      AdornedView view = PathView(n);
      Hypergraph h(view.cq());
      std::vector<VarId> path_vars;
      for (int i = 1; i <= n + 1; ++i)
        path_vars.push_back(view.cq().FindVar("x" + std::to_string(i)));
      TreeDecomposition td = BuildZigZagPath(path_vars);
      const double d = 0.2;
      DecompositionMetrics m =
          ComputeMetrics(td, h, DelayAssignment::Uniform(td, d));
      table.AddRow({StrFormat("Ex.10 P%d zig-zag, delta=0.2", n),
                    "delta-width", StrFormat("%.4f", m.width),
                    "2 - delta = 1.8"});
      table.AddRow({"", "delta-height", StrFormat("%.4f", m.height),
                    StrFormat("%d * delta = %.1f", n / 2, (n / 2) * d)});
    }
  }
  table.Print();
  return 0;
}

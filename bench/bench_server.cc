// Serving-layer benchmark: workload replay against an in-process
// CqcServer over real TCP (docs/serving.md).
//
// Closed loop, per query family (path3 and the tripartite triangle of
// Example 1): C connections each issue their next request the moment the
// previous answer lands — the scaling headline (1 vs 8 connections) and
// the read-coalescing ablation (the same 8-connection hot-key replay with
// kFlagNoCoalesce on every request). Open loop: requests fired on a fixed
// schedule regardless of completions, which is what exposes the
// saturation knee — the offered rate where achieved throughput stops
// tracking the schedule and queueing delay, not service time, dominates
// the tail.
//
// Both families replay a small hot-key pool, so concurrent connections
// keep colliding on identical drains: the regime read coalescing exists
// for. Answers are large (tens of thousands of rows), so the shared drain
// plus the once-per-drain encoded body (serve/coalescer.h) is what makes
// 8 connections beat 1 even when serialization dominates.
//
// BENCH_server.json records *_kqps (gated: lower is a regression) and
// *_p99_us tails (gated: higher is a regression, 250us absolute floor)
// per configuration; tools/bench_compare.py compares against
// bench/baselines/BENCH_server.json. CQC_BENCH_SMALL=1 shortens the
// measured windows (CI) without changing record keys.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "serve/client.h"
#include "serve/server.h"
#include "workload/generators.h"

namespace {

using namespace cqc;
using namespace cqc::serve;

struct Family {
  const char* name;
  const char* view;
};

const Family kFamilies[] = {
    // Bound-x 3-path: ~deg^3 rows per answer (~64k at degree 40).
    {"path3", "Q^bfff(x,y,z,w) = R1(x,y), R2(y,z), R3(z,w)"},
    // Bound-x triangles on the tripartite worst case: 2m^2 rows per
    // answer for x in A (20k at m = 100).
    {"triangle", "Q^bff(x,y,z) = T(x,y), T(y,z), T(z,x)"},
};

/// Hot-key pool (vertices in [1, m] are triangle-A vertices, and path
/// sources). Two keys x 8 connections keeps every drain contended.
const char* kHotBodies[] = {"? 1", "? 2"};

struct LoopResult {
  double qps = 0;
  double p50_us = 0, p99_us = 0, p999_us = 0;
  size_t requests = 0;
  size_t errors = 0;
};

LoopResult Summarize(std::vector<double>& lat_us, double elapsed_s,
                     size_t errors) {
  LoopResult r;
  r.requests = lat_us.size();
  r.errors = errors;
  r.qps = elapsed_s > 0 ? (double)lat_us.size() / elapsed_s : 0;
  r.p50_us = bench::Percentile(lat_us, 50);
  r.p99_us = bench::Percentile(lat_us, 99);
  r.p999_us = bench::Percentile(lat_us, 99.9);
  return r;
}

/// Closed loop: each connection runs request -> response -> next request
/// for `seconds`. Throughput is completion-bound; latency is service time.
LoopResult RunClosedLoop(int port, const Family& fam, int connections,
                         bool coalesce, double seconds) {
  std::vector<std::vector<double>> lat(connections);
  std::atomic<size_t> errors{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        errors.fetch_add(1);
        return;
      }
      while (!go.load()) std::this_thread::yield();
      WallTimer window;
      uint64_t id = 0;
      while (window.Seconds() < seconds) {
        WireRequest req;
        req.view = fam.view;
        req.body = kHotBodies[(c + id) % std::size(kHotBodies)];
        req.request_id = ++id;
        req.deadline_ms = 30'000;
        if (!coalesce) req.flags = kFlagNoCoalesce;
        WireResponse resp;
        WallTimer t;
        if (!client.Call(req, &resp).ok() ||
            resp.code != StatusCode::kOk) {
          errors.fetch_add(1);
          continue;
        }
        lat[c].push_back(t.Micros());
      }
    });
  }
  WallTimer elapsed;
  go.store(true);
  for (auto& t : threads) t.join();
  const double total_s = elapsed.Seconds();
  std::vector<double> merged;
  for (auto& v : lat) merged.insert(merged.end(), v.begin(), v.end());
  return Summarize(merged, total_s, errors.load());
}

/// Open loop: `connections` senders share one global schedule of
/// `target_qps` evenly spaced slots; each request's latency is measured
/// from its SCHEDULED time, so queueing delay past the knee shows up in
/// the tail instead of silently stretching the send times.
LoopResult RunOpenLoop(int port, const Family& fam, int connections,
                       double target_qps, double seconds) {
  std::vector<std::vector<double>> lat(connections);
  std::atomic<size_t> errors{0};
  std::atomic<uint64_t> ticket{0};
  const uint64_t budget = (uint64_t)(target_qps * seconds);
  std::vector<std::thread> threads;
  std::atomic<bool> go{false};
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        errors.fetch_add(1);
        return;
      }
      while (!go.load()) std::this_thread::yield();
      const auto start = std::chrono::steady_clock::now();
      for (;;) {
        const uint64_t slot = ticket.fetch_add(1);
        if (slot >= budget) return;
        const auto due =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(slot / target_qps));
        std::this_thread::sleep_until(due);
        WireRequest req;
        req.view = fam.view;
        req.body = kHotBodies[slot % std::size(kHotBodies)];
        req.request_id = slot;
        req.deadline_ms = 30'000;
        WireResponse resp;
        if (!client.Call(req, &resp).ok() ||
            resp.code != StatusCode::kOk) {
          errors.fetch_add(1);
          continue;
        }
        const double us =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - due)
                .count();
        lat[c].push_back(us);
      }
    });
  }
  WallTimer elapsed;
  go.store(true);
  for (auto& t : threads) t.join();
  const double total_s = elapsed.Seconds();
  std::vector<double> merged;
  for (auto& v : lat) merged.insert(merged.end(), v.begin(), v.end());
  return Summarize(merged, total_s, errors.load());
}

std::string Fmt(double v) { return StrFormat("%.1f", v); }

bool Warm(int port, const Family& fam) {
  Client warm;
  if (!warm.Connect("127.0.0.1", port, std::chrono::seconds(120)).ok())
    return false;
  WireRequest req;
  req.view = fam.view;
  req.body = "? 1";
  req.deadline_ms = 120'000;
  WireResponse resp;
  if (Status s = warm.Call(req, &resp); !s.ok()) {
    std::fprintf(stderr, "warmup (%s) failed: %s\n", fam.name,
                 s.message().c_str());
    return false;
  }
  if (resp.code != StatusCode::kOk) {
    std::fprintf(stderr, "warmup (%s) rejected: %s\n", fam.name,
                 resp.message.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main() {
  const bool small = std::getenv("CQC_BENCH_SMALL") != nullptr;
  const double closed_s = small ? 0.5 : 2.0;
  const double open_s = small ? 0.75 : 1.5;

  Database db;
  MakePathRelations(db, "R", 3, /*num_nodes=*/400,
                    /*edges_per_relation=*/14'000, /*seed=*/7);
  MakeTripartiteTriangleGraph(db, "T", /*m=*/180);

  ServerOptions opts;
  opts.worker_threads = 4;
  opts.port = 0;
  opts.max_deadline_ms = 120'000;  // the triangle build can be slow
  CqcServer server(&db, opts);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.message().c_str());
    return 1;
  }
  const int port = server.port();

  // One request per family builds its structure, so every measured window
  // is pure read path.
  for (const Family& fam : kFamilies)
    if (!Warm(port, fam)) return 1;

  bench::BenchReport report("server");

  for (const Family& fam : kFamilies) {
    std::printf("%s closed loop (hot-key replay, %d-value pool, "
                "%.1fs/config)\n",
                fam.name, (int)std::size(kHotBodies), closed_s);
    bench::Table closed({"config", "qps", "p50 us", "p99 us", "p99.9 us",
                         "errors"});
    const LoopResult one = RunClosedLoop(port, fam, 1, true, closed_s);
    const ServerStats mid = server.stats();
    const LoopResult on8 = RunClosedLoop(port, fam, 8, true, closed_s);
    const ServerStats after_on = server.stats();
    const LoopResult off8 = RunClosedLoop(port, fam, 8, false, closed_s);
    const struct {
      const char* cfg;
      const LoopResult* r;
    } kClosed[] = {{"1conn_coalesce", &one},
                   {"8conn_coalesce", &on8},
                   {"8conn_nocoalesce", &off8}};
    for (const auto& c : kClosed) {
      closed.AddRow({c.cfg, Fmt(c.r->qps), Fmt(c.r->p50_us),
                     Fmt(c.r->p99_us), Fmt(c.r->p999_us),
                     std::to_string(c.r->errors)});
      report.AddRecord()
          .Set("experiment", "closed_loop")
          .Set("structure", std::string(fam.name) + "_" + c.cfg)
          .Set("qps_kqps", c.r->qps / 1e3)
          .Set("lat_p50_us", c.r->p50_us)
          .Set("lat_p99_us", c.r->p99_us)
          .Set("lat_p999_us", c.r->p999_us)
          .Set("requests", (unsigned long long)c.r->requests)
          .Set("errors", (unsigned long long)c.r->errors);
    }
    closed.Print();

    const uint64_t shared = after_on.shared_drains - mid.shared_drains;
    const uint64_t coalesced =
        after_on.coalesced_reads - mid.coalesced_reads;
    const double frac =
        on8.requests > 0 ? (double)coalesced / (double)on8.requests : 0.0;
    const double scaling = one.qps > 0 ? on8.qps / one.qps : 0;
    std::printf(
        "  8conn_coalesce drains: %llu shared, %llu reads coalesced "
        "(%.1f%% of requests served by someone else's drain)\n",
        (unsigned long long)shared, (unsigned long long)coalesced,
        frac * 100.0);
    std::printf("  scaling: 8conn_coalesce = %.2fx single connection "
                "(acceptance: >= 2x)%s\n\n",
                scaling, scaling >= 2.0 ? "" : "  ** BELOW TARGET **");
    report.AddRecord()
        .Set("experiment", "summary")
        .Set("structure", std::string(fam.name) + "_scaling")
        .Set("coalesce_scaling_x", scaling)
        .Set("coalesced_read_fraction", frac);
  }

  const Family& open_fam = kFamilies[1];  // triangle: the smaller answers
  std::printf("%s open loop (4 connections, scheduled arrivals, "
              "%.2fs/rate; latency measured from the schedule)\n",
              open_fam.name, open_s);
  bench::Table open_table({"offered qps", "achieved qps", "p50 us",
                           "p99 us", "p99.9 us", "errors"});
  double knee = 0;
  for (const double target : {50.0, 100.0, 200.0, 400.0}) {
    const LoopResult r = RunOpenLoop(port, open_fam, 4, target, open_s);
    if (r.qps >= 0.95 * target) knee = target;
    open_table.AddRow({Fmt(target), Fmt(r.qps), Fmt(r.p50_us),
                       Fmt(r.p99_us), Fmt(r.p999_us),
                       std::to_string(r.errors)});
    report.AddRecord()
        .Set("experiment", "open_loop")
        .Set("structure",
             "target_" + std::to_string((unsigned long long)target))
        .Set("offered_qps", target)
        .Set("achieved_kqps", r.qps / 1e3)
        .Set("lat_p50_us", r.p50_us)
        .Set("lat_p99_us", r.p99_us)
        .Set("lat_p999_us", r.p999_us)
        .Set("requests", (unsigned long long)r.requests)
        .Set("errors", (unsigned long long)r.errors);
  }
  open_table.Print();
  std::printf("  saturation knee: last offered rate sustained at >= 95%%: "
              "%s qps\n",
              knee > 0 ? Fmt(knee).c_str() : "none");
  report.AddRecord()
      .Set("experiment", "summary")
      .Set("structure", "open_loop_knee")
      .Set("knee_qps", knee);

  server.Stop();
  const ServerStats st = server.stats();
  if (st.active_sessions != 0 || st.open_fds != 0) {
    std::fprintf(stderr, "FAIL: leaked sessions/fds after the bench\n");
    return 1;
  }
  return 0;
}

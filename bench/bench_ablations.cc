// Experiment E11 (ablations): design choices DESIGN.md calls out.
//
//  A1 — slack-aware covers (§3.1, discussion before Example 7): on the
//       star join, the minimum-rho* cover has slack 1 while u = (1,..,1)
//       has slack n; the space curve differs by the exponent of tau.
//  A2 — the Algorithm 4 semijoin fixup: without it, Theorem-2 enumeration
//       backtracks through bag valuations that die downstream; with it, a
//       dictionary 1-bit guarantees a full result below the bag (Prop. 17)
//       and the measured delay on dangling-heavy data drops.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/compressed_rep.h"
#include "decomposition/connex_builder.h"
#include "decomposition/decomposed_rep.h"
#include "workload/catalog.h"
#include "workload/generators.h"

int main() {
  using namespace cqc;
  setvbuf(stdout, nullptr, _IOLBF, 0);
  using bench::Table;

  // ----- A1: cover choice on the triangle -----
  // Two valid covers of Delta^bfb: the rho*-optimal (1/2,1/2,1/2) with
  // slack alpha(y) = 1 (space ~ N^{3/2}/tau), and the heavier (1,1,0)
  // with slack 2 (space ~ N^2/tau^2). The theory predicts a crossover at
  // tau ~ sqrt(N): slack beats rho* once tau is large.
  bench::Banner("E11-A1: cover choice ablation (slack, §3.1)",
                "space N^{3/2}/tau for u=(.5,.5,.5) vs N^2/tau^2 for "
                "u=(1,1,0); crossover at tau ~ sqrt(N)");
  {
    Database db;
    MakeTripartiteTriangleGraph(db, "R", 40);
    AdornedView view = TriangleView("bfb");
    const double n = (double)db.TotalTuples();
    std::printf("N = %.0f, sqrt(N) = %.0f\n", n, std::sqrt(n));
    Table table({"tau", "u=(.5,.5,.5) aux", "alpha", "u=(1,1,0) aux",
                 "alpha "});
    for (double tau : {8.0, 64.0, 512.0, 4096.0}) {
      std::vector<std::string> row{StrFormat("%.0f", tau)};
      for (auto cover : {std::vector<double>{0.5, 0.5, 0.5},
                         std::vector<double>{1.0, 1.0, 0.0}}) {
        CompressedRepOptions copt;
        copt.tau = tau;
        copt.cover = cover;
        auto rep = CompressedRep::Build(view, db, copt);
        if (!rep.ok()) {
          row.push_back("build failed");
          row.push_back("-");
          continue;
        }
        const CompressedRepStats& st = rep.value()->stats();
        row.push_back(bench::HumanBytes(st.AuxBytes()));
        row.push_back(StrFormat("%.1f", st.alpha));
      }
      table.AddRow(row);
    }
    table.Print();
    std::printf(
        "reading: for small tau the rho* cover stores less; past the\n"
        "crossover the slack-2 cover's tau^-2 decay wins.\n");
  }

  // ----- A2: Algorithm 4 fixup on/off -----
  bench::Banner("E11-A2: Algorithm 4 semijoin fixup ablation",
                "without the fixup, dictionary 1-bits may lead to bag "
                "valuations with no continuation; delay degrades");
  {
    // P_4 with cross-bag deaths: the zig-zag bags are {x1,x2,x4,x5} and
    // {x2,x3,x4}. Every (x2, x4) pair looks alive inside the first bag
    // (x2 and x4 each continue *somewhere*), but only a few pairs share a
    // middle x3 — the death is only visible one bag down, exactly what
    // Algorithm 4 prunes.
    Database db;
    Relation* r1 = db.AddRelation("R1", 2);
    Relation* r2 = db.AddRelation("R2", 2);
    Relation* r3 = db.AddRelation("R3", 2);
    Relation* r4 = db.AddRelation("R4", 2);
    const int k = 60, live = 12;
    for (int i = 0; i < k; ++i) {
      Value a = 1000 + (Value)i, b = 3000 + (Value)i;
      r1->Insert({1, a});
      r4->Insert({b, 7});
      // a_i's middle and b_i's middle coincide only for i < live.
      r2->Insert({a, (Value)(i < live ? 5000 + i : 6000 + i)});
      r3->Insert({(Value)(i < live ? 5000 + i : 7000 + i), b});
    }
    db.SealAll();

    AdornedView view = PathView(4);  // Q^bfffb(x1..x5)
    std::vector<VarId> path_vars;
    for (int i = 1; i <= 5; ++i)
      path_vars.push_back(view.cq().FindVar("x" + std::to_string(i)));
    TreeDecomposition td = BuildZigZagPath(path_vars);

    Table table({"fixup", "delta", "worst delay (ops)", "total TA (ops)",
                 "tuples"});
    for (double delta : {0.0, 0.4}) {
      for (bool fixup : {true, false}) {
        DecomposedRepOptions dopt;
        dopt.delta = DelayAssignment::Uniform(td, delta);
        dopt.run_fixup = fixup;
        auto rep = DecomposedRep::Build(view, db, td, dopt);
        if (!rep.ok()) {
          std::printf("build failed: %s\n", rep.status().message().c_str());
          return 1;
        }
        auto e = rep.value()->Answer({1, 7});
        DelayProfile p = MeasureEnumeration(*e);
        table.AddRow({fixup ? "on" : "off", StrFormat("%.1f", delta),
                      StrFormat("%llu", (unsigned long long)p.max_delay_ops),
                      StrFormat("%llu", (unsigned long long)p.total_ops),
                      StrFormat("%zu", p.num_tuples)});
      }
    }
    table.Print();
    std::printf(
        "reading: with the fixup off, the first bag happily emits x2\n"
        "values that die in the second bag; the measured gap between\n"
        "outputs grows with the dangling mass.\n");
  }
  return 0;
}

// Experiment E8 (§6, Fig. 5): the parameter optimizers.
//
// MinDelayCover / MinSpaceCover solve in polynomial time (Prop. 11/12);
// this bench prints the optimal (u, alpha, tau) across space budgets for
// the paper's query families and times the LP solves.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "fractional/optimizer.h"
#include "util/timer.h"
#include "workload/catalog.h"

namespace {

std::string FormatCover(const std::vector<double>& u) {
  std::string out = "(";
  for (size_t i = 0; i < u.size(); ++i)
    out += cqc::StrFormat("%s%.2f", i ? "," : "", u[i]);
  return out + ")";
}

}  // namespace

int main() {
  using namespace cqc;
  setvbuf(stdout, nullptr, _IOLBF, 0);
  using bench::Table;

  const double n_rel = 1e6;
  struct QueryCase {
    std::string name;
    AdornedView view;
  };
  std::vector<QueryCase> cases;
  cases.push_back({"triangle bfb", TriangleView("bfb")});
  cases.push_back({"running ex.", RunningExampleView()});
  cases.push_back({"star S3", StarView(3)});
  cases.push_back({"LW4", LoomisWhitneyView(4)});
  cases.push_back({"path P4", PathView(4)});

  bench::Banner("E8a: MinDelayCover across space budgets (Fig. 5 LP)",
                "optimal log tau / log N under S <= N^budget; poly time");
  Table table({"query", "budget N^b", "alpha", "rho", "log tau/log N",
               "cover u", "solve us"});
  for (const QueryCase& qc : cases) {
    Hypergraph h(qc.view.cq());
    std::vector<double> log_sizes(h.num_edges(), std::log(n_rel));
    for (double b : {1.0, 1.25, 1.5, 2.0}) {
      WallTimer t;
      CoverSolution sol = MinDelayCover(h, qc.view.free_set(), log_sizes,
                                        b * std::log(n_rel));
      double us = t.Micros();
      if (!sol.feasible) {
        table.AddRow({qc.name, StrFormat("%.2f", b), "-", "-", "infeasible",
                      "-", StrFormat("%.0f", us)});
        continue;
      }
      table.AddRow({qc.name, StrFormat("%.2f", b),
                    StrFormat("%.2f", sol.alpha), StrFormat("%.2f", sol.rho),
                    StrFormat("%.3f", sol.log_tau / std::log(n_rel)),
                    FormatCover(sol.u), StrFormat("%.0f", us)});
    }
  }
  table.Print();

  bench::Banner("E8b: MinSpaceCover across delay budgets (Prop. 12)",
                "binary search over MinDelayCover; log space / log N");
  Table t2({"query", "delay N^d", "log space/log N", "alpha", "solve us"});
  for (const QueryCase& qc : cases) {
    Hypergraph h(qc.view.cq());
    std::vector<double> log_sizes(h.num_edges(), std::log(n_rel));
    for (double d : {0.0, 0.25, 0.5}) {
      WallTimer t;
      CoverSolution sol = MinSpaceCover(h, qc.view.free_set(), log_sizes,
                                        d * std::log(n_rel));
      double us = t.Micros();
      if (!sol.feasible) {
        t2.AddRow({qc.name, StrFormat("%.2f", d), "infeasible", "-",
                   StrFormat("%.0f", us)});
        continue;
      }
      t2.AddRow({qc.name, StrFormat("%.2f", d),
                 StrFormat("%.3f", sol.log_space / std::log(n_rel)),
                 StrFormat("%.2f", sol.alpha), StrFormat("%.0f", us)});
    }
  }
  t2.Print();

  bench::Banner("E8c: LP scaling with query size (Prop. 11)",
                "solve time grows polynomially in the number of atoms");
  Table t3({"query", "atoms", "solve us"});
  for (int n = 2; n <= 10; ++n) {
    AdornedView view = StarView(n);
    Hypergraph h(view.cq());
    std::vector<double> log_sizes(n, std::log(n_rel));
    WallTimer t;
    CoverSolution sol = MinDelayCover(h, view.free_set(), log_sizes,
                                      std::log(n_rel) * n / 2.0);
    double us = t.Micros();
    t3.AddRow({StrFormat("star S%d", n), StrFormat("%d", n),
               StrFormat("%.0f%s", us, sol.feasible ? "" : " (infeasible)")});
  }
  t3.Print();
  return 0;
}

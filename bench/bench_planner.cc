// bench_planner — the cost-based planner against every fixed structure.
//
// For each of four workload families (triangle on the tripartite worst
// case, the §1 co-author view on Zipf data, path, set-intersection) and a
// per-family space budget Sigma = N^B, this bench:
//   1. builds each *fixed* structure choice under the same budget (the
//      restricted planner picks tau / the delay assignment for the tunable
//      structures; materialized and direct have no knobs),
//   2. builds the planner's *auto* choice over all candidates,
//   3. measures build time, resident bytes, and per-request delay
//      percentiles (in deterministic abstract ops) through the unified
//      AnswerRep interface, and
//   4. reports the plan-choice regret: auto's p95 delay minus the best
//      fixed structure whose *measured* footprint fits the budget.
//
// Budget compliance convention: a budget of Sigma tuple-units allows
// Sigma * 8 bytes per head column (one 64-bit word per column per unit).
// BENCH_planner.json carries one record per (family, structure) plus the
// auto record with regret fields, so plan quality is tracked across PRs.
#include <cmath>
#include <cstdio>
#include "bench/bench_common.h"
#include "plan/planner.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace {

using namespace cqc;

std::vector<double> ToDouble(const std::vector<uint64_t>& xs) {
  return std::vector<double>(xs.begin(), xs.end());
}

struct Measured {
  std::string label;
  bool is_auto = false;
  RepKind kind = RepKind::kDirect;
  Plan plan;
  double build_seconds = 0;
  size_t space_bytes = 0;
  bool measured_within_budget = false;
  double delay_ops_p50 = 0, delay_ops_p95 = 0, delay_ops_max = 0;
  bench::RequestStats stats;
};

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  bench::BenchReport report("planner");
  int families = 0;
  int matched = 0;

  struct FamilyCase {
    std::string name;
    double budget;
  };
  for (const FamilyCase fc :
       {FamilyCase{"triangle_bfb", 1.2}, FamilyCase{"coauthor_bff", 1.3},
        FamilyCase{"path4", 1.6}, FamilyCase{"setint_bbf", 1.2}}) {
    // --- family setup -------------------------------------------------------
    Database db;
    std::vector<BoundValuation> requests;
    std::optional<AdornedView> view;
    if (fc.name == "triangle_bfb") {
      MakeTripartiteTriangleGraph(db, "R", 40);
      view = TriangleView("bfb");
      for (Value a = 1; a <= 20; ++a) requests.push_back({a, 80 + a});
    } else if (fc.name == "coauthor_bff") {
      // The §1 graph-analytics application on the Zipf-skewed DBLP-style
      // workload: a few prolific authors create the heavy co-author lists.
      MakeZipfBipartite(db, "R", 400, 1500, 8000, 1.2, 5);
      view = CoauthorView();
      for (Value a = 1; a <= 23; ++a) requests.push_back({a});
      requests.push_back({0});
      requests.push_back({999999999});
    } else if (fc.name == "path4") {
      MakePathRelations(db, "R", 4, 60, 400, 7);
      view = PathView(4);
      const Relation* r1 = db.Find("R1");
      const Relation* r4 = db.Find("R4");
      Rng rng(11);
      for (int i = 0; i < 25; ++i)
        requests.push_back(
            {r1->At(rng.UniformRange(0, r1->size() - 1), 0),
             r4->At(rng.UniformRange(0, r4->size() - 1), 1)});
    } else {
      MakeSetFamily(db, "R", 60, 1500, 9000, 1.1, 3);
      view = SetIntersectionView();
      for (Value s1 = 1; s1 <= 5; ++s1)
        for (Value s2 = s1 + 1; s2 <= s1 + 5; ++s2)
          requests.push_back({s1, s2});
    }

    auto stats = CollectCatalogStats(*view, db);
    CQC_CHECK(stats.ok()) << stats.status().message();
    const double log_n = stats.value().log_n;
    const int head_arity = view->num_bound() + view->num_free();
    const double budget_bytes =
        std::exp(fc.budget * log_n) * 8.0 * head_arity;
    bench::Banner(
        StrFormat("planner: %s", fc.name.c_str()),
        StrFormat("budget Sigma = N^%.1f (N = %.0f, %s): auto choice should "
                  "match the best budget-fitting fixed structure",
                  fc.budget, std::exp(log_n),
                  bench::HumanBytes((size_t)budget_bytes).c_str()));

    // --- build + measure every candidate ------------------------------------
    Planner planner(&db);
    std::vector<Measured> measured;
    auto run = [&](const std::string& label, bool is_auto,
                   const PlannerOptions& popt) {
      auto planned = planner.PlanView(*view, popt);
      if (!planned.ok()) {
        std::printf("  %-18s plan failed: %s\n", label.c_str(),
                    planned.status().message().c_str());
        return;
      }
      Measured m;
      m.label = label;
      m.is_auto = is_auto;
      m.plan = std::move(planned).value();
      m.kind = m.plan.spec.kind;
      auto rep = planner.BuildPlan(*view, m.plan);
      if (!rep.ok()) {
        std::printf("  %-18s build failed: %s\n", label.c_str(),
                    rep.status().message().c_str());
        return;
      }
      m.build_seconds = rep.value()->build_seconds();
      m.space_bytes = rep.value()->SpaceBytes();
      m.measured_within_budget = (double)m.space_bytes <= budget_bytes;
      m.stats = bench::MeasureRep(requests, *rep.value());
      m.delay_ops_p50 =
          bench::Percentile(ToDouble(m.stats.request_delay_ops), 50);
      m.delay_ops_p95 =
          bench::Percentile(ToDouble(m.stats.request_delay_ops), 95);
      m.delay_ops_max = (double)m.stats.worst_delay_ops;
      measured.push_back(std::move(m));
    };

    PlannerOptions base;
    base.space_budget_exponent = fc.budget;
    for (RepKind kind : {RepKind::kMaterialized, RepKind::kCompressed,
                         RepKind::kDecomposed, RepKind::kDirect}) {
      PlannerOptions popt = base;
      popt.consider_materialized = kind == RepKind::kMaterialized;
      popt.consider_compressed = kind == RepKind::kCompressed;
      popt.consider_decomposed = kind == RepKind::kDecomposed;
      popt.consider_direct = kind == RepKind::kDirect;
      run(RepKindName(kind), /*is_auto=*/false, popt);
    }
    run("auto", /*is_auto=*/true, base);

    // --- regret: auto vs the best budget-fitting fixed structure ------------
    const Measured* auto_m = nullptr;
    const Measured* best_fixed = nullptr;
    for (const Measured& m : measured) {
      if (m.is_auto) {
        auto_m = &m;
      } else if (m.measured_within_budget &&
                 (best_fixed == nullptr ||
                  m.delay_ops_p95 < best_fixed->delay_ops_p95)) {
        best_fixed = &m;
      }
    }

    bench::Table table({"structure", "plan", "build s", "space", "fits",
                        "delay ops p50", "p95", "max", "total s", "tuples"});
    for (const Measured& m : measured) {
      table.AddRow(
          {m.label, RepKindName(m.kind),
           StrFormat("%.3f", m.build_seconds),
           bench::HumanBytes(m.space_bytes),
           m.measured_within_budget ? "yes" : "NO",
           StrFormat("%.0f", m.delay_ops_p50),
           StrFormat("%.0f", m.delay_ops_p95),
           StrFormat("%.0f", m.delay_ops_max),
           StrFormat("%.4f", m.stats.total_seconds),
           StrFormat("%zu", m.stats.total_tuples)});
      bench::JsonObject& rec = report.AddRecord();
      rec.Set("family", fc.name)
          .Set("structure", m.label)
          .Set("is_auto", m.is_auto ? 1 : 0)
          .Set("chosen_kind", RepKindName(m.kind))
          .Set("tau", m.plan.spec.compressed.tau)
          .Set("budget_exponent", fc.budget)
          .Set("budget_bytes", (unsigned long long)budget_bytes)
          .Set("predicted_space_exp", m.plan.predicted_log_space / log_n)
          .Set("predicted_delay_exp", m.plan.predicted_log_delay / log_n)
          .Set("build_seconds", m.build_seconds)
          .Set("space_bytes", (unsigned long long)m.space_bytes)
          .Set("within_budget", m.measured_within_budget ? 1 : 0)
          .Set("delay_ops_p50", m.delay_ops_p50)
          .Set("delay_ops_p95", m.delay_ops_p95)
          .Set("delay_ops_max", m.delay_ops_max)
          .SetRequestStats("answer", m.stats);
      if (m.is_auto && best_fixed != nullptr) {
        rec.Set("best_fixed", best_fixed->label)
            .Set("regret_delay_ops_p95",
                 m.delay_ops_p95 - best_fixed->delay_ops_p95)
            .Set("regret_total_seconds",
                 m.stats.total_seconds - best_fixed->stats.total_seconds);
      }
    }
    table.Print();

    if (auto_m != nullptr && best_fixed != nullptr) {
      ++families;
      // Deterministic ops: a correct plan choice reproduces the best fixed
      // structure's delays exactly; allow 10% headroom for near-ties.
      const bool ok = auto_m->measured_within_budget &&
                      auto_m->delay_ops_p95 <=
                          best_fixed->delay_ops_p95 * 1.10 + 16;
      matched += ok ? 1 : 0;
      std::printf(
          "  auto chose %s (p95 %.0f ops) vs best fixed %s (p95 %.0f ops): "
          "%s\n",
          RepKindName(auto_m->kind), auto_m->delay_ops_p95,
          best_fixed->label.c_str(), best_fixed->delay_ops_p95,
          ok ? "MATCH" : "REGRET");
      std::printf("%s", auto_m->plan.Explain().c_str());
    }
  }

  std::printf("\nplanner matched the best budget-fitting fixed structure on "
              "%d/%d families\n",
              matched, families);
  return 0;
}

// Experiment E7 (Prop. 2 / Prop. 4): full enumeration and
// d-representations.
//
// Claims: acyclic CQs (fhw = 1) admit linear-space constant-delay full
// enumeration (Prop. 2); for adorned views, space O(|D|^{fhw(H|V_b)})
// suffices for O(1) delay (Prop. 4). We measure the co-author 2-path view
// (acyclic, output can be quadratic) and the bound-triangle view.
#include <cstdio>

#include "baseline/d_representation.h"
#include "baseline/materialized_view.h"
#include "bench/bench_common.h"
#include "workload/catalog.h"
#include "workload/generators.h"

int main() {
  using namespace cqc;
  setvbuf(stdout, nullptr, _IOLBF, 0);
  using bench::Table;

  bench::Banner("E7a: co-author view V^bff (Prop. 4 d-representation)",
                "linear space, O(1) delay per request despite a potentially "
                "quadratic materialized view");
  Database db;
  // Zipf authorship: a few prolific authors make the join output blow up.
  MakeZipfBipartite(db, "R", 2000, 8000, 40000, 0.9, 11);
  AdornedView view = CoauthorView();

  Table table({"structure", "build s", "space", "worst delay (ops)",
               "tuples over 100 requests"});
  std::vector<BoundValuation> requests;
  for (Value author = 1; author <= 100; ++author) requests.push_back({author});

  {
    auto drep = BuildDRepresentation(view, db);
    if (!drep.ok()) {
      std::printf("drep build failed: %s\n", drep.status().message().c_str());
      return 1;
    }
    auto s = bench::MeasureRequests(requests, [&](const BoundValuation& vb) {
      return drep.value()->Answer(vb);
    });
    table.AddRow({"d-representation",
                  StrFormat("%.3f", drep.value()->stats().build_seconds),
                  bench::HumanBytes(drep.value()->stats().total_aux_bytes),
                  StrFormat("%llu", (unsigned long long)s.worst_delay_ops),
                  StrFormat("%zu", s.total_tuples)});
  }
  {
    auto mv = MaterializedView::Build(view, db);
    auto s = bench::MeasureRequests(requests, [&](const BoundValuation& vb) {
      return mv.value()->Answer(vb);
    });
    table.AddRow({"materialized",
                  StrFormat("%.3f", mv.value()->build_seconds()),
                  bench::HumanBytes(mv.value()->SpaceBytes()),
                  StrFormat("%llu", (unsigned long long)s.worst_delay_ops),
                  StrFormat("%zu", s.total_tuples)});
  }
  table.Print();

  bench::Banner("E7b: full enumeration of an acyclic path (Prop. 2)",
                "fhw = 1: linear compression, constant-delay enumeration");
  Database db2;
  MakePathRelations(db2, "R", 3, 500, 6000, 21);
  AdornedView full = PathView(3, "ffff");
  auto drep = BuildDRepresentation(full, db2);
  if (!drep.ok()) {
    std::printf("build failed: %s\n", drep.status().message().c_str());
    return 1;
  }
  auto e = drep.value()->Answer({});
  DelayProfile p = MeasureEnumeration(*e);
  std::printf(
      "|D| = %zu, output = %zu tuples, aux space %s, worst gap = %llu ops, "
      "total %.3fs\n",
      db2.TotalTuples(), p.num_tuples,
      bench::HumanBytes(drep.value()->stats().total_aux_bytes).c_str(),
      (unsigned long long)p.max_delay_ops, p.total_seconds);
  std::printf("shape check: worst gap stays a small constant; space is\n"
              "linear in |D| even when the output is much larger.\n");
  return 0;
}

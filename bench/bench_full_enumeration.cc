// Experiment E7 (Prop. 2 / Prop. 4): full enumeration and
// d-representations.
//
// Claims: acyclic CQs (fhw = 1) admit linear-space constant-delay full
// enumeration (Prop. 2); for adorned views, space O(|D|^{fhw(H|V_b)})
// suffices for O(1) delay (Prop. 4). We measure the co-author 2-path view
// (acyclic, output can be quadratic) and the bound-triangle view; every
// structure is additionally drained through both enumeration paths
// (one-tuple-at-a-time Next vs the batch API) and the throughput ratio is
// recorded in BENCH_full_enumeration.json.
#include <cstdio>

#include "baseline/d_representation.h"
#include "baseline/materialized_view.h"
#include "bench/bench_common.h"
#include "workload/catalog.h"
#include "workload/generators.h"

int main() {
  using namespace cqc;
  setvbuf(stdout, nullptr, _IOLBF, 0);
  using bench::Table;
  bench::BenchReport report("full_enumeration");

  bench::Banner("E7a: co-author view V^bff (Prop. 4 d-representation)",
                "linear space, O(1) delay per request despite a potentially "
                "quadratic materialized view");
  Database db;
  // Zipf authorship: a few prolific authors make the join output blow up.
  MakeZipfBipartite(db, "R", 2000, 8000, 40000, 0.9, 11);
  AdornedView view = CoauthorView();
  const int arity = view.num_free();

  Table table({"structure", "build s", "space", "worst delay (ops)",
               "tuples over 100 requests", "single Mt/s", "batch Mt/s",
               "speedup"});
  std::vector<BoundValuation> requests;
  for (Value author = 1; author <= 100; ++author) requests.push_back({author});

  // Drains every request back to back — the multi-request throughput of one
  // structure under the chosen enumeration path.
  auto throughput = [&](auto answer) {
    return bench::CompareDrainThroughput(
        [&]() -> std::unique_ptr<TupleEnumerator> {
          // Concatenate all requests behind one enumerator-like drain by
          // measuring per request and summing is noisier; instead use the
          // heaviest request (author 1 under Zipf).
          return answer(BoundValuation{1});
        },
        arity, 256, 5);
  };

  {
    auto drep = BuildDRepresentation(view, db);
    if (!drep.ok()) {
      std::printf("drep build failed: %s\n", drep.status().message().c_str());
      return 1;
    }
    auto answer = [&](const BoundValuation& vb) {
      return drep.value()->Answer(vb);
    };
    auto s = bench::MeasureRequests(requests, answer);
    auto tc = throughput(answer);
    table.AddRow({"d-representation",
                  StrFormat("%.3f", drep.value()->stats().build_seconds),
                  bench::HumanBytes(drep.value()->stats().total_aux_bytes),
                  StrFormat("%llu", (unsigned long long)s.worst_delay_ops),
                  StrFormat("%zu", s.total_tuples),
                  StrFormat("%.2f", tc.single_mtps()),
                  StrFormat("%.2f", tc.batched_mtps()),
                  StrFormat("%.2fx", tc.speedup())});
    report.AddRecord()
        .Set("experiment", "E7a_coauthor")
        .Set("structure", "d_representation")
        .Set("build_seconds", drep.value()->stats().build_seconds)
        .Set("aux_bytes", drep.value()->stats().total_aux_bytes)
        .SetRequestStats("single", s)
        .SetRequestStats(
            "batched",
            bench::MeasureRequests(requests, answer, arity, 256))
        .Set("drain_tuples", tc.tuples)
        .Set("drain_single_mtps", tc.single_mtps())
        .Set("drain_batched_mtps", tc.batched_mtps())
        .Set("drain_batched_speedup", tc.speedup());
  }
  {
    auto mv = MaterializedView::Build(view, db);
    auto answer = [&](const BoundValuation& vb) {
      return mv.value()->Answer(vb);
    };
    auto s = bench::MeasureRequests(requests, answer);
    auto tc = throughput(answer);
    table.AddRow({"materialized",
                  StrFormat("%.3f", mv.value()->build_seconds()),
                  bench::HumanBytes(mv.value()->SpaceBytes()),
                  StrFormat("%llu", (unsigned long long)s.worst_delay_ops),
                  StrFormat("%zu", s.total_tuples),
                  StrFormat("%.2f", tc.single_mtps()),
                  StrFormat("%.2f", tc.batched_mtps()),
                  StrFormat("%.2fx", tc.speedup())});
    report.AddRecord()
        .Set("experiment", "E7a_coauthor")
        .Set("structure", "materialized_view")
        .Set("build_seconds", mv.value()->build_seconds())
        .Set("aux_bytes", mv.value()->SpaceBytes())
        .SetRequestStats("single", s)
        .SetRequestStats(
            "batched",
            bench::MeasureRequests(requests, answer, arity, 256))
        .Set("drain_tuples", tc.tuples)
        .Set("drain_single_mtps", tc.single_mtps())
        .Set("drain_batched_mtps", tc.batched_mtps())
        .Set("drain_batched_speedup", tc.speedup());
  }
  table.Print();

  bench::Banner("E7b: full enumeration of an acyclic path (Prop. 2)",
                "fhw = 1: linear compression, constant-delay enumeration");
  Database db2;
  MakePathRelations(db2, "R", 3, 500, 6000, 21);
  AdornedView full = PathView(3, "ffff");
  auto drep = BuildDRepresentation(full, db2);
  if (!drep.ok()) {
    std::printf("build failed: %s\n", drep.status().message().c_str());
    return 1;
  }
  auto e = drep.value()->Answer({});
  DelayProfile p = MeasureEnumeration(*e);
  std::printf(
      "|D| = %zu, output = %zu tuples, aux space %s, worst gap = %llu ops, "
      "total %.3fs\n",
      db2.TotalTuples(), p.num_tuples,
      bench::HumanBytes(drep.value()->stats().total_aux_bytes).c_str(),
      (unsigned long long)p.max_delay_ops, p.total_seconds);

  auto tc = bench::CompareDrainThroughput(
      [&]() -> std::unique_ptr<TupleEnumerator> {
        return drep.value()->Answer({});
      },
      full.num_free(), 256, 5);
  std::printf(
      "full-path drain: %zu tuples, single %.2f Mt/s, batched %.2f Mt/s "
      "(%.2fx)\n",
      tc.tuples, tc.single_mtps(), tc.batched_mtps(), tc.speedup());
  report.AddRecord()
      .Set("experiment", "E7b_path_full_enumeration")
      .Set("structure", "d_representation")
      .Set("build_seconds", drep.value()->stats().build_seconds)
      .Set("aux_bytes", drep.value()->stats().total_aux_bytes)
      .Set("output_tuples", p.num_tuples)
      .Set("worst_delay_ops", p.max_delay_ops)
      .Set("drain_tuples", tc.tuples)
      .Set("drain_single_mtps", tc.single_mtps())
      .Set("drain_batched_mtps", tc.batched_mtps())
      .Set("drain_batched_speedup", tc.speedup());

  std::printf("shape check: worst gap stays a small constant; space is\n"
              "linear in |D| even when the output is much larger.\n");
  return 0;
}

// Experiment E10: google-benchmark micro suite for the §4 primitives —
// box decomposition, balanced splitting, trie refinement, generic join
// steps, dictionary lookups, and the one-at-a-time vs batched enumeration
// paths. main() additionally records the batched-vs-single throughput
// ratios in BENCH_micro.json before running the registered benchmarks.
#include <benchmark/benchmark.h>

#include "baseline/direct_eval.h"
#include "bench/bench_common.h"
#include "core/bitpack.h"
#include "core/compressed_rep.h"
#include "core/cost_model.h"
#include "core/splitter.h"
#include "join/generic_join.h"
#include "relational/hash_index.h"
#include "simd/kernels.h"
#include "simd/simd_caps.h"
#include "util/logging.h"
#include "util/request_context.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

// Shared fixture state (built once).
struct Fixture {
  Database db;
  std::unique_ptr<AdornedView> view;
  std::vector<BoundAtom> atoms;
  std::unique_ptr<LexDomain> domain;
  std::unique_ptr<CostModel> cost;
  std::unique_ptr<CompressedRep> rep;
  std::vector<BoundValuation> requests;

  Fixture() {
    MakeTripartiteTriangleGraph(db, "R", 32);
    view = std::make_unique<AdornedView>(TriangleView("bfb"));
    for (const Atom& atom : view->cq().atoms())
      atoms.emplace_back(atom, *db.Find(atom.relation), view->bound_vars(),
                         view->free_vars());
    cost = std::make_unique<CostModel>(
        &atoms, std::vector<double>{0.5, 0.5, 0.5});
    std::vector<std::vector<Value>> doms(1);
    doms[0] = db.Find("R")->ActiveDomain(0);
    domain = std::make_unique<LexDomain>(std::move(doms));
    CompressedRepOptions copt;
    copt.tau = 16.0;
    rep = std::move(CompressedRep::Build(*view, db, copt)).value();
    for (Value a = 1; a <= 32; ++a) requests.push_back({a, 32 + a});
  }
};

Fixture& F() {
  static Fixture f;
  return f;
}

void BM_BoxDecompose(benchmark::State& state) {
  const int mu = (int)state.range(0);
  Tuple lo(mu), hi(mu);
  for (int i = 0; i < mu; ++i) {
    lo[i] = 3;
    hi[i] = 1000 - i;
  }
  lo[0] = 1;
  FInterval interval{lo, hi};
  for (auto _ : state) {
    auto boxes = BoxDecompose(interval);
    benchmark::DoNotOptimize(boxes);
  }
}
BENCHMARK(BM_BoxDecompose)->Arg(1)->Arg(3)->Arg(6);

void BM_TrieRefine(benchmark::State& state) {
  Fixture& f = F();
  const SortedIndex& idx = f.atoms[0].bf_index();
  Rng rng(1);
  for (auto _ : state) {
    RowRange r = idx.Refine(idx.Root(), 0, 1 + rng.Uniform(96));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TrieRefine);

void BM_IntervalCost(benchmark::State& state) {
  Fixture& f = F();
  FInterval whole{f.domain->MinTuple(), f.domain->MaxTuple()};
  for (auto _ : state) {
    double t = f.cost->IntervalCost(whole);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_IntervalCost);

void BM_SplitInterval(benchmark::State& state) {
  Fixture& f = F();
  FInterval whole{f.domain->MinTuple(), f.domain->MaxTuple()};
  for (auto _ : state) {
    SplitResult s = SplitInterval(whole, *f.domain, *f.cost);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SplitInterval);

void BM_CompressedRepAnswer(benchmark::State& state) {
  Fixture& f = F();
  size_t i = 0;
  for (auto _ : state) {
    auto e = f.rep->Answer(f.requests[i++ % f.requests.size()]);
    Tuple t;
    size_t n = 0;
    while (e->Next(&t)) ++n;
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_CompressedRepAnswer);

void BM_CompressedRepAnswerBatched(benchmark::State& state) {
  Fixture& f = F();
  size_t i = 0;
  TupleBuffer buf(f.view->num_free());
  for (auto _ : state) {
    auto e = f.rep->Answer(f.requests[i++ % f.requests.size()]);
    size_t n = 0;
    for (;;) {
      buf.Clear();
      size_t got = e->NextBatch(&buf, 256);
      n += got;
      if (got < 256) break;
    }
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_CompressedRepAnswerBatched);

void BM_DictionaryLookup(benchmark::State& state) {
  Fixture& f = F();
  const HeavyDictionary& dict = f.rep->dictionary();
  uint32_t id = dict.FindValuation(Tuple{1, 33});
  size_t node = 0;
  for (auto _ : state) {
    auto bit = dict.Lookup((int)(node++ % f.rep->tree().size()), id);
    benchmark::DoNotOptimize(bit);
  }
}
BENCHMARK(BM_DictionaryLookup);

std::vector<JoinAtomInput> TriangleJoinInputs(
    const std::vector<BoundAtom>& atoms) {
  std::vector<JoinAtomInput> inputs;
  for (const BoundAtom& atom : atoms) {
    JoinAtomInput in;
    in.index = &atom.bf_index();
    in.start = atom.bf_index().Root();
    in.start_level = 0;
    for (int i = 0; i < atom.num_free(); ++i)
      in.levels.emplace_back(atom.free_positions()[i], i);
    inputs.push_back(std::move(in));
  }
  return inputs;
}

void BM_GenericJoinTriangleFull(benchmark::State& state) {
  Fixture& f = F();
  // Full enumeration join over (x,y,z) via a fresh all-free binding.
  AdornedView full = TriangleView("fff");
  std::vector<BoundAtom> atoms;
  for (const Atom& atom : full.cq().atoms())
    atoms.emplace_back(atom, *f.db.Find("R"), full.bound_vars(),
                       full.free_vars());
  for (auto _ : state) {
    JoinIterator join(TriangleJoinInputs(atoms), 3,
                      std::vector<LevelConstraint>(3, LevelConstraint::Any()));
    Tuple t;
    size_t n = 0;
    while (join.Next(&t)) ++n;
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_GenericJoinTriangleFull)->Unit(benchmark::kMillisecond);

void BM_GenericJoinTriangleFullBatched(benchmark::State& state) {
  Fixture& f = F();
  AdornedView full = TriangleView("fff");
  std::vector<BoundAtom> atoms;
  for (const Atom& atom : full.cq().atoms())
    atoms.emplace_back(atom, *f.db.Find("R"), full.bound_vars(),
                       full.free_vars());
  TupleBuffer buf(3);
  for (auto _ : state) {
    JoinIterator join(TriangleJoinInputs(atoms), 3,
                      std::vector<LevelConstraint>(3, LevelConstraint::Any()));
    size_t n = 0;
    for (;;) {
      buf.Clear();
      size_t got = join.NextBatch(&buf, 256);
      n += got;
      if (got < 256) break;
    }
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_GenericJoinTriangleFullBatched)->Unit(benchmark::kMillisecond);

// Per-kernel scalar-vs-dispatch rows for the SIMD layer (src/simd/): each
// record measures one kernel in its production hot-loop shape, once pinned
// to the scalar twin and once at the best level the CPU supports. The
// *_mtps / *_mprobes keys are gated by tools/bench_compare.py; the
// dispatch_speedup ratio is informational (1.0 on scalar-only hardware).
void WriteKernelRecords(bench::BenchReport& report) {
  Rng rng(4242);
  auto best_of = [](int reps, auto fn) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      WallTimer t;
      fn();
      best = std::min(best, t.Seconds());
    }
    return best;
  };
  auto at_level = [&](simd::Level level, auto measure) {
    simd::SetLevel(level);
    const double s = measure();
    simd::SetLevel(simd::Detected());
    return s;
  };
  auto add = [&](const char* structure, const char* unit_key_scalar,
                 const char* unit_key_dispatch, double units, double scalar_s,
                 double dispatch_s) {
    report.AddRecord()
        .Set("experiment", "simd_kernels")
        .Set("structure", structure)
        .Set("dispatch_level", simd::LevelName(simd::Detected()))
        .Set(unit_key_scalar, units / scalar_s / 1e6)
        .Set(unit_key_dispatch, units / dispatch_s / 1e6)
        .Set("dispatch_speedup", scalar_s / dispatch_s);
    std::printf("%s: scalar %.1f -> %s %.1f M/s (%.2fx)\n", structure,
                units / scalar_s / 1e6, simd::LevelName(simd::Detected()),
                units / dispatch_s / 1e6, scalar_s / dispatch_s);
  };

  {
    // Batch decode: 64-row blocks over a bit-packed pool — the
    // HeavyDictionary candidate-drain / rehash shape.
    const size_t kRows = 1 << 16;
    constexpr int kArity = 4;
    const uint32_t widths[kArity] = {9, 17, 33, 5};
    std::vector<Value> flat(kRows * kArity);
    for (size_t r = 0; r < kRows; ++r)
      for (int c = 0; c < kArity; ++c)
        flat[r * kArity + c] = rng.Next() & ((Value(1) << widths[c]) - 1);
    for (int c = 0; c < kArity; ++c)  // pin the planned widths via row 0
      flat[c] = (Value(1) << widths[c]) - 1;
    const PackedTuplePool pool = PackedTuplePool::Pack(flat, kArity, kRows);
    std::vector<Value> out(64 * kArity);
    Value sink = 0;
    const int kReps = 40;
    auto measure = [&] {
      return best_of(5, [&] {
        for (int rep = 0; rep < kReps; ++rep)
          for (size_t base = 0; base < kRows; base += 64) {
            pool.UnpackRows(base, std::min<size_t>(64, kRows - base),
                            out.data());
            sink ^= out[0];
          }
      });
    };
    const double scalar_s = at_level(simd::Level::kScalar, measure);
    const double dispatch_s = at_level(simd::Detected(), measure);
    benchmark::DoNotOptimize(sink);
    add("simd_unpack_rows", "scalar_mtps", "dispatch_mtps",
        (double)kReps * kRows, scalar_s, dispatch_s);
  }

  {
    // Galloping intersection probes: leapfrog SeekGE of a sparse outer
    // list into a denser sorted column — the cyclic-box intersection and
    // SortedIndex::SeekGE shape (short forward hops, occasional gallops).
    const size_t kOuter = 1 << 16;
    std::vector<Value> a(kOuter), b;
    Value v = 0;
    for (auto& x : a) x = (v += 1 + rng.Uniform(12));
    b.reserve(kOuter * 4);
    v = 0;
    while (v < a.back()) b.push_back(v += 1 + rng.Uniform(3));
    size_t hits = 0;
    const int kReps = 30;
    auto measure = [&] {
      return best_of(5, [&] {
        for (int rep = 0; rep < kReps; ++rep) {
          size_t ib = 0;
          hits = 0;
          for (size_t ia = 0; ia < a.size() && ib < b.size(); ++ia) {
            ib = simd::SeekGE(b.data(), ib, b.size(), a[ia]);
            if (ib < b.size() && b[ib] == a[ia]) ++hits;
          }
        }
      });
    };
    const double scalar_s = at_level(simd::Level::kScalar, measure);
    const double dispatch_s = at_level(simd::Detected(), measure);
    benchmark::DoNotOptimize(hits);
    add("simd_seekge_intersect", "scalar_mprobes", "dispatch_mprobes",
        (double)kReps * kOuter, scalar_s, dispatch_s);
  }

  {
    // Tombstone filter: HashIndex::ContainsBatch over staged candidate
    // blocks — the UpdatableRep delete-filter drain (group tag compares +
    // batched hash/prefetch).
    Relation rel("F", 3);
    for (int i = 0; i < 100000; ++i)
      rel.Insert({rng.Uniform(4096), rng.Uniform(4096), rng.Uniform(4096)});
    rel.Seal();
    const size_t kProbes = 1 << 16;
    std::vector<Value> probes;
    probes.reserve(kProbes * 3);
    for (size_t i = 0; i < kProbes; ++i) {
      if (rng.Bernoulli(0.5)) {
        const size_t row = rng.Uniform(rel.size());
        for (int c = 0; c < 3; ++c) probes.push_back(rel.At(row, c));
      } else {
        for (int c = 0; c < 3; ++c) probes.push_back(rng.Uniform(4096) + 4096);
      }
    }
    std::vector<uint8_t> hit(kProbes);
    const int kReps = 20;
    auto measure = [&] {
      return best_of(5, [&] {
        for (int rep = 0; rep < kReps; ++rep)
          for (size_t base = 0; base < kProbes; base += 256)
            rel.GetHashIndex().ContainsBatch(
                probes.data() + base * 3,
                std::min<size_t>(256, kProbes - base), hit.data() + base);
      });
    };
    const double scalar_s = at_level(simd::Level::kScalar, measure);
    const double dispatch_s = at_level(simd::Detected(), measure);
    benchmark::DoNotOptimize(hit.data());
    add("simd_tombstone_filter", "scalar_mtps", "dispatch_mtps",
        (double)kReps * kProbes, scalar_s, dispatch_s);
  }
}

// Records the batched-vs-single throughput headline in BENCH_micro.json
// (the E10 acceptance metric for the batch enumeration API).
void WriteMicroReport() {
  Fixture& f = F();
  bench::BenchReport report("micro");

  auto record = [&](const char* structure, auto make, int arity,
                    int repeats) {
    auto tc = bench::CompareDrainThroughput(make, arity, 256, repeats);
    report.AddRecord()
        .Set("experiment", "E10_micro")
        .Set("structure", structure)
        .Set("drain_tuples", tc.tuples)
        .Set("drain_single_mtps", tc.single_mtps())
        .Set("drain_batched_mtps", tc.batched_mtps())
        .Set("drain_batched_speedup", tc.speedup());
    std::printf("%s: %zu tuples, batched %.2fx vs single\n", structure,
                tc.tuples, tc.speedup());
  };

  {
    // Headline: the WCOJ enumeration hot path on a single-participant
    // deepest level (path query), where the batch API's run-scan replaces
    // a binary search per output tuple.
    Database db;
    MakePathRelations(db, "R", 3, 400, 8000, 77);
    AdornedView full = PathView(3, "ffff");
    CompressedRepOptions copt;
    copt.tau = 512.0;  // light intervals evaluate through the WCOJ batches
    auto cr = CompressedRep::Build(full, db, copt);
    auto de = DirectEval::Build(full, db);
    record("compressed_rep_path3_full_enumeration",
           [&]() -> std::unique_ptr<TupleEnumerator> {
             return cr.value()->Answer({});
           },
           4, 10);
    record("direct_eval_path3_full_enumeration",
           [&]() -> std::unique_ptr<TupleEnumerator> {
             return de.value()->Answer({});
           },
           4, 10);

    // Deadline-check overhead on the same hot path: the serving layer wraps
    // every enumerator in DeadlineCheckedEnumerator when a request carries a
    // deadline, so the per-batch clock poll must be in the noise (<3% is the
    // robustness acceptance budget). Interleaved min-of-N so drift hits both
    // arms equally.
    {
      const RequestContext ctx =
          RequestContext::WithTimeout(std::chrono::hours(1));
      double plain_best = 1e300, deadline_best = 1e300;
      size_t tuples = 0;
      for (int rep = 0; rep < 10; ++rep) {
        {
          auto e = cr.value()->Answer({});
          WallTimer t;
          tuples = DrainBatched(*e, 4, 256);
          plain_best = std::min(plain_best, t.Seconds());
        }
        {
          DeadlineCheckedEnumerator e(cr.value()->Answer({}), &ctx);
          WallTimer t;
          const size_t n = DrainBatched(e, 4, 256);
          deadline_best = std::min(deadline_best, t.Seconds());
          CQC_CHECK(n == tuples);
        }
      }
      const double plain_mtps = (double)tuples / plain_best / 1e6;
      const double deadline_mtps = (double)tuples / deadline_best / 1e6;
      const double overhead_pct =
          100.0 * (plain_mtps - deadline_mtps) / plain_mtps;
      report.AddRecord()
          .Set("experiment", "E10_micro")
          .Set("structure", "deadline_checked_drain")
          .Set("drain_tuples", tuples)
          .Set("drain_plain_mtps", plain_mtps)
          .Set("drain_deadline_mtps", deadline_mtps)
          .Set("deadline_overhead_pct", overhead_pct);
      std::printf(
          "deadline_checked_drain: %.2f -> %.2f Mt/s (%.2f%% overhead, "
          "budget 3%%: %s)\n",
          plain_mtps, deadline_mtps, overhead_pct,
          overhead_pct < 3.0 ? "OK" : "EXCEEDED");
    }
  }
  {
    // Bound-request sweep on the fixture triangle (tiny outputs: shows the
    // per-request floor rather than the bulk path). One enumerator chains
    // every request so the single and batched drains see identical streams.
    class ConcatEnumerator : public TupleEnumerator {
     public:
      ConcatEnumerator(const CompressedRep* rep,
                       const std::vector<BoundValuation>* requests)
          : rep_(rep), requests_(requests) {}
      bool Next(Tuple* out) override {
        for (;;) {
          if (!cur_ && !Open()) return false;
          if (cur_->Next(out)) return true;
          cur_.reset();
        }
      }
      size_t NextBatch(TupleBuffer* out, size_t max_tuples) override {
        size_t n = 0;
        while (n < max_tuples) {
          if (!cur_ && !Open()) break;
          n += cur_->NextBatch(out, max_tuples - n);
          if (n < max_tuples) cur_.reset();
        }
        return n;
      }

     private:
      bool Open() {
        if (idx_ >= requests_->size()) return false;
        cur_ = rep_->Answer((*requests_)[idx_++]);
        return true;
      }
      const CompressedRep* rep_;
      const std::vector<BoundValuation>* requests_;
      size_t idx_ = 0;
      std::unique_ptr<TupleEnumerator> cur_;
    };
    record("compressed_rep_triangle_bfb_requests",
           [&]() -> std::unique_ptr<TupleEnumerator> {
             return std::make_unique<ConcatEnumerator>(f.rep.get(),
                                                       &f.requests);
           },
           f.view->num_free(), 64);
  }
  {
    // Cyclic case for the scan fast path: the triangle's deepest level has
    // two participating atoms (S's and T's z columns), so the batch API
    // drains it through the galloping intersection instead of a full
    // leapfrog re-seek per tuple. tau is set so light intervals stream
    // through the WCOJ joins (at tau=1 the traversal emits almost every
    // tuple via per-tuple tree operations — split probes and unit leaves —
    // which no batch API can amortize).
    AdornedView full = TriangleView("fff");
    CompressedRepOptions copt;
    copt.tau = 256.0;
    auto cr = CompressedRep::Build(full, f.db, copt);
    record("compressed_rep_triangle_full_enumeration",
           [&]() -> std::unique_ptr<TupleEnumerator> {
             return cr.value()->Answer({});
           },
           3, 10);
  }
  WriteKernelRecords(report);
}

}  // namespace
}  // namespace cqc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  cqc::WriteMicroReport();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Experiment E10: google-benchmark micro suite for the §4 primitives —
// box decomposition, balanced splitting, trie refinement, generic join
// steps, and dictionary lookups.
#include <benchmark/benchmark.h>

#include "core/compressed_rep.h"
#include "core/cost_model.h"
#include "core/splitter.h"
#include "join/generic_join.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace cqc {
namespace {

// Shared fixture state (built once).
struct Fixture {
  Database db;
  std::unique_ptr<AdornedView> view;
  std::vector<BoundAtom> atoms;
  std::unique_ptr<LexDomain> domain;
  std::unique_ptr<CostModel> cost;
  std::unique_ptr<CompressedRep> rep;
  std::vector<BoundValuation> requests;

  Fixture() {
    MakeTripartiteTriangleGraph(db, "R", 32);
    view = std::make_unique<AdornedView>(TriangleView("bfb"));
    for (const Atom& atom : view->cq().atoms())
      atoms.emplace_back(atom, *db.Find(atom.relation), view->bound_vars(),
                         view->free_vars());
    cost = std::make_unique<CostModel>(
        &atoms, std::vector<double>{0.5, 0.5, 0.5});
    std::vector<std::vector<Value>> doms(1);
    doms[0] = db.Find("R")->ActiveDomain(0);
    domain = std::make_unique<LexDomain>(std::move(doms));
    CompressedRepOptions copt;
    copt.tau = 16.0;
    rep = std::move(CompressedRep::Build(*view, db, copt)).value();
    for (Value a = 1; a <= 32; ++a) requests.push_back({a, 32 + a});
  }
};

Fixture& F() {
  static Fixture f;
  return f;
}

void BM_BoxDecompose(benchmark::State& state) {
  const int mu = (int)state.range(0);
  Tuple lo(mu), hi(mu);
  for (int i = 0; i < mu; ++i) {
    lo[i] = 3;
    hi[i] = 1000 - i;
  }
  lo[0] = 1;
  FInterval interval{lo, hi};
  for (auto _ : state) {
    auto boxes = BoxDecompose(interval);
    benchmark::DoNotOptimize(boxes);
  }
}
BENCHMARK(BM_BoxDecompose)->Arg(1)->Arg(3)->Arg(6);

void BM_TrieRefine(benchmark::State& state) {
  Fixture& f = F();
  const SortedIndex& idx = f.atoms[0].bf_index();
  Rng rng(1);
  for (auto _ : state) {
    RowRange r = idx.Refine(idx.Root(), 0, 1 + rng.Uniform(96));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TrieRefine);

void BM_IntervalCost(benchmark::State& state) {
  Fixture& f = F();
  FInterval whole{f.domain->MinTuple(), f.domain->MaxTuple()};
  for (auto _ : state) {
    double t = f.cost->IntervalCost(whole);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_IntervalCost);

void BM_SplitInterval(benchmark::State& state) {
  Fixture& f = F();
  FInterval whole{f.domain->MinTuple(), f.domain->MaxTuple()};
  for (auto _ : state) {
    SplitResult s = SplitInterval(whole, *f.domain, *f.cost);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SplitInterval);

void BM_CompressedRepAnswer(benchmark::State& state) {
  Fixture& f = F();
  size_t i = 0;
  for (auto _ : state) {
    auto e = f.rep->Answer(f.requests[i++ % f.requests.size()]);
    Tuple t;
    size_t n = 0;
    while (e->Next(&t)) ++n;
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_CompressedRepAnswer);

void BM_DictionaryLookup(benchmark::State& state) {
  Fixture& f = F();
  const HeavyDictionary& dict = f.rep->dictionary();
  uint32_t id = dict.FindValuation({1, 33});
  size_t node = 0;
  for (auto _ : state) {
    auto bit = dict.Lookup((int)(node++ % f.rep->tree().size()), id);
    benchmark::DoNotOptimize(bit);
  }
}
BENCHMARK(BM_DictionaryLookup);

void BM_GenericJoinTriangleFull(benchmark::State& state) {
  Fixture& f = F();
  // Full enumeration join over (x,y,z) via a fresh all-free binding.
  AdornedView full = TriangleView("fff");
  std::vector<BoundAtom> atoms;
  for (const Atom& atom : full.cq().atoms())
    atoms.emplace_back(atom, *f.db.Find("R"), full.bound_vars(),
                       full.free_vars());
  for (auto _ : state) {
    std::vector<JoinAtomInput> inputs;
    for (const BoundAtom& atom : atoms) {
      JoinAtomInput in;
      in.index = &atom.bf_index();
      in.start = atom.bf_index().Root();
      in.start_level = 0;
      for (int i = 0; i < atom.num_free(); ++i)
        in.levels.emplace_back(atom.free_positions()[i], i);
      inputs.push_back(std::move(in));
    }
    JoinIterator join(std::move(inputs), 3,
                      std::vector<LevelConstraint>(3, LevelConstraint::Any()));
    Tuple t;
    size_t n = 0;
    while (join.Next(&t)) ++n;
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_GenericJoinTriangleFull)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cqc

BENCHMARK_MAIN();

// Shared harness for the experiment benches: request measurement,
// fixed-width table printing, and machine-readable result emission. Every
// bench prints (a) what the paper's analysis predicts and (b) the measured
// series, so EXPERIMENTS.md can record paper-vs-measured per experiment; a
// BenchReport additionally writes BENCH_<name>.json (per-query build time,
// delay percentiles, bytes, throughput) so the perf trajectory is tracked
// across PRs by diffing JSON instead of scraping stdout.
#ifndef CQC_BENCH_BENCH_COMMON_H_
#define CQC_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/enumerator.h"
#include "plan/answer_rep.h"
#include "query/adorned_view.h"
#include "util/str_util.h"
#include "util/timer.h"

namespace cqc {
namespace bench {

/// Aggregate over a set of access requests, keeping the per-request series
/// so reports can compute percentiles.
struct RequestStats {
  size_t num_requests = 0;
  size_t total_tuples = 0;
  uint64_t worst_delay_ops = 0;   // max over requests of max gap
  double worst_delay_us = 0;      // same, wall clock
  uint64_t total_ops = 0;
  double total_seconds = 0;       // total answer time over all requests
  std::vector<double> request_seconds;     // per-request answer time
  std::vector<double> request_delay_us;    // per-request worst gap
  std::vector<uint64_t> request_delay_ops;

  void Add(const DelayProfile& p) {
    ++num_requests;
    total_tuples += p.num_tuples;
    worst_delay_ops = std::max(worst_delay_ops, p.max_delay_ops);
    worst_delay_us = std::max(worst_delay_us, p.max_delay_seconds * 1e6);
    total_ops += p.total_ops;
    total_seconds += p.total_seconds;
    request_seconds.push_back(p.total_seconds);
    request_delay_us.push_back(p.max_delay_seconds * 1e6);
    request_delay_ops.push_back(p.max_delay_ops);
  }
};

/// Runs `answer(vb)` for every request and aggregates delay / answer time.
/// batch_size > 0 drains through NextBatch (`arity` = the stream's tuple
/// arity; the "delay" is then per batch); otherwise per tuple.
template <typename AnswerFn>
RequestStats MeasureRequests(const std::vector<BoundValuation>& requests,
                             AnswerFn&& answer, int arity = 0,
                             size_t batch_size = 0) {
  RequestStats out;
  for (const BoundValuation& vb : requests) {
    auto e = answer(vb);
    out.Add(batch_size > 0
                ? MeasureEnumerationBatched(*e, arity, batch_size)
                : MeasureEnumeration(*e));
  }
  return out;
}

/// Measures any structure through the unified AnswerRep serving interface
/// (Result::value() CHECK-fails with the status on a malformed request).
inline RequestStats MeasureRep(const std::vector<BoundValuation>& requests,
                               const AnswerRep& rep, size_t batch_size = 0) {
  return MeasureRequests(
      requests,
      [&](const BoundValuation& vb) { return rep.Answer(vb).value(); },
      rep.view().num_free(), batch_size);
}

/// Min-of-N throughput for point-answer APIs (Count / AnswerExists /
/// AnswerAggregate): one call = one op, no tuple stream to drain, so
/// MeasureRep's tuples-per-second framing does not apply. The checksum the
/// op returns is folded into `sink` so the optimizer cannot elide the calls.
struct PointOpStats {
  size_t ops = 0;
  double best_seconds = 0;  // best full pass over the requests
  uint64_t sink = 0;
  double mops() const {
    return best_seconds > 0 ? ops / best_seconds / 1e6 : 0;
  }
  /// Microseconds per op, from the best pass.
  double us_per_op() const {
    return ops > 0 ? best_seconds / (double)ops * 1e6 : 0;
  }
};

/// Runs `op(vb)` (returning any integer-convertible checksum) once per
/// request per pass; best pass wins, classic min-of-N to shed noise.
template <typename OpFn>
PointOpStats MeasurePointOps(const std::vector<BoundValuation>& requests,
                             OpFn&& op, int repeats = 5) {
  PointOpStats out;
  out.ops = requests.size();
  out.best_seconds = 1e300;
  for (int r = 0; r < repeats; ++r) {
    WallTimer t;
    uint64_t sink = 0;
    for (const BoundValuation& vb : requests) sink += (uint64_t)op(vb);
    out.best_seconds = std::min(out.best_seconds, t.Seconds());
    out.sink = sink;
  }
  if (out.ops == 0) out.best_seconds = 0;
  return out;
}

/// p in [0, 100]; nearest-rank percentile of an unsorted series.
inline double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * (double)(xs.size() - 1);
  const size_t lo = (size_t)rank;
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  return xs[lo] * (1 - (rank - lo)) + xs[hi] * (rank - lo);
}

/// One-tuple-at-a-time vs batched drain of the same enumerator factory:
/// the throughput headline for the batch enumeration API.
struct ThroughputComparison {
  size_t tuples = 0;
  double single_seconds = 0;
  double batched_seconds = 0;
  /// Million tuples / second.
  double Mtps(double seconds) const {
    return seconds > 0 ? tuples / seconds / 1e6 : 0;
  }
  double single_mtps() const { return Mtps(single_seconds); }
  double batched_mtps() const { return Mtps(batched_seconds); }
  double speedup() const {
    return batched_seconds > 0 ? single_seconds / batched_seconds : 0;
  }
};

/// `make()` returns a fresh enumerator over the same stream. Each path is
/// drained `repeats` times; best time wins (classic min-of-N to shed noise).
template <typename MakeFn>
ThroughputComparison CompareDrainThroughput(MakeFn&& make, int arity,
                                            size_t batch_size = 256,
                                            int repeats = 5) {
  ThroughputComparison out;
  size_t expected = SIZE_MAX;  // no drain finished yet
  auto best_drain = [&](bool batched) {
    double best = 1e300;
    for (int r = 0; r < repeats; ++r) {
      auto e = make();
      WallTimer t;
      size_t n = 0;
      if (batched) {
        n = DrainBatched(*e, arity, batch_size);
      } else {
        Tuple tup;
        while (e->Next(&tup)) ++n;
      }
      best = std::min(best, t.Seconds());
      if (expected != SIZE_MAX && n != expected)
        std::fprintf(stderr, "WARNING: drain saw %zu vs %zu tuples\n", n,
                     expected);
      expected = n;
    }
    return best;
  };
  out.single_seconds = best_drain(false);
  out.tuples = expected;  // the single-drain count is the reference
  out.batched_seconds = best_drain(true);
  return out;
}

inline std::string HumanBytes(size_t bytes) {
  if (bytes >= 10 * 1024 * 1024)
    return StrFormat("%.1f MiB", (double)bytes / (1024.0 * 1024.0));
  if (bytes >= 10 * 1024) return StrFormat("%.1f KiB", bytes / 1024.0);
  return StrFormat("%zu B", bytes);
}

/// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> c) { rows_.push_back(std::move(c)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
      widths[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("  ");
      for (size_t c = 0; c < row.size(); ++c)
        std::printf("%-*s  ", (int)widths[c], row[c].c_str());
      std::printf("\n");
    };
    print_row(headers_);
    std::vector<std::string> rule;
    for (size_t w : widths) rule.push_back(std::string(w, '-'));
    print_row(rule);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// --- machine-readable results (BENCH_<name>.json) --------------------------

/// A flat JSON object: insertion-ordered key -> encoded value.
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, double v) {
    return SetRaw(key, std::isfinite(v) ? StrFormat("%.9g", v) : "null");
  }
  JsonObject& Set(const std::string& key, unsigned long v) {
    return SetRaw(key, StrFormat("%llu", (unsigned long long)v));
  }
  JsonObject& Set(const std::string& key, unsigned long long v) {
    return SetRaw(key, StrFormat("%llu", v));
  }
  JsonObject& Set(const std::string& key, int v) {
    return SetRaw(key, StrFormat("%d", v));
  }
  JsonObject& Set(const std::string& key, const std::string& v) {
    return SetRaw(key, Quote(v));
  }
  JsonObject& Set(const std::string& key, const char* v) {
    return SetRaw(key, Quote(v));
  }
  /// `value` must already be valid JSON (nested object/array).
  JsonObject& SetRaw(const std::string& key, std::string value) {
    fields_.emplace_back(key, std::move(value));
    return *this;
  }

  /// Convenience: the standard per-structure measurement block.
  JsonObject& SetRequestStats(const std::string& prefix,
                              const RequestStats& s) {
    Set(prefix + "_requests", s.num_requests);
    Set(prefix + "_tuples", s.total_tuples);
    Set(prefix + "_total_seconds", s.total_seconds);
    Set(prefix + "_worst_delay_ops", s.worst_delay_ops);
    Set(prefix + "_delay_us_p50", Percentile(s.request_delay_us, 50));
    Set(prefix + "_delay_us_p95", Percentile(s.request_delay_us, 95));
    Set(prefix + "_delay_us_p99", Percentile(s.request_delay_us, 99));
    Set(prefix + "_delay_us_max", s.worst_delay_us);
    return *this;
  }

  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i) out += ", ";
      out += Quote(fields_[i].first) + ": " + fields_[i].second;
    }
    return out + "}";
  }

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    return out + "\"";
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Collects per-query/per-structure records and writes BENCH_<name>.json
/// into the working directory on Write() (and from the destructor, so a
/// bench cannot forget).
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}
  ~BenchReport() { Write(); }

  /// Adds one record; fill the returned object in place.
  JsonObject& AddRecord() {
    records_.push_back(std::make_unique<JsonObject>());
    return *records_.back();
  }

  void Write() {
    if (written_) return;
    written_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    out << "{\n  \"bench\": " << JsonObject::Quote(name_)
        << ",\n  \"records\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      out << "    " << records_[i]->ToString()
          << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s (%zu records)\n", path.c_str(), records_.size());
  }

 private:
  std::string name_;
  std::vector<std::unique_ptr<JsonObject>> records_;
  bool written_ = false;
};

inline void Banner(const std::string& title, const std::string& claim) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace cqc

#endif  // CQC_BENCH_BENCH_COMMON_H_

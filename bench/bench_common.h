// Shared harness for the experiment benches: request measurement and
// fixed-width table printing. Every bench prints (a) what the paper's
// analysis predicts and (b) the measured series, so EXPERIMENTS.md can
// record paper-vs-measured per experiment.
#ifndef CQC_BENCH_BENCH_COMMON_H_
#define CQC_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/enumerator.h"
#include "query/adorned_view.h"
#include "util/str_util.h"

namespace cqc {
namespace bench {

/// Aggregate over a set of access requests.
struct RequestStats {
  size_t num_requests = 0;
  size_t total_tuples = 0;
  uint64_t worst_delay_ops = 0;   // max over requests of max gap
  double worst_delay_us = 0;      // same, wall clock
  uint64_t total_ops = 0;
  double total_seconds = 0;       // total answer time over all requests
};

/// Runs `answer(vb)` for every request and aggregates delay / answer time.
template <typename AnswerFn>
RequestStats MeasureRequests(const std::vector<BoundValuation>& requests,
                             AnswerFn&& answer) {
  RequestStats out;
  for (const BoundValuation& vb : requests) {
    auto e = answer(vb);
    DelayProfile p = MeasureEnumeration(*e);
    ++out.num_requests;
    out.total_tuples += p.num_tuples;
    out.worst_delay_ops = std::max(out.worst_delay_ops, p.max_delay_ops);
    out.worst_delay_us = std::max(out.worst_delay_us,
                                  p.max_delay_seconds * 1e6);
    out.total_ops += p.total_ops;
    out.total_seconds += p.total_seconds;
  }
  return out;
}

inline std::string HumanBytes(size_t bytes) {
  if (bytes >= 10 * 1024 * 1024)
    return StrFormat("%.1f MiB", (double)bytes / (1024.0 * 1024.0));
  if (bytes >= 10 * 1024)
    return StrFormat("%.1f KiB", (double)bytes / 1024.0);
  return StrFormat("%zu B", bytes);
}

/// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
      widths[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("  ");
      for (size_t c = 0; c < row.size(); ++c)
        std::printf("%-*s  ", (int)widths[c], row[c].c_str());
      std::printf("\n");
    };
    print_row(headers_);
    std::vector<std::string> rule;
    for (size_t w : widths) rule.push_back(std::string(w, '-'));
    print_row(rule);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Banner(const std::string& title, const std::string& claim) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace cqc

#endif  // CQC_BENCH_BENCH_COMMON_H_

// Experiment E8: shard-parallel enumeration scaling.
//
// Claim under test: the delay-balanced tree's split points partition the
// output space into ranges whose enumeration cost the planner can balance,
// so draining K shards on T threads approaches T-fold throughput on the
// full-enumeration workload (factorised/cover representations partition
// along the representation's structure; cf. Olteanu & Zavodny, Kara &
// Olteanu). We measure the sequential batched drain, then ParallelAnswer at
// 1/2/4/8 threads in both delivery modes, and record throughput, speedup
// over 1 thread, and scaling efficiency (speedup / threads) in
// BENCH_parallel_enumeration.json. Every parallel drain is differentially
// checked against the sequential tuple count.
//
// NOTE: speedups are physical — on a single-core container every
// configuration reports ~1x; run on a multi-core host for the scaling
// curve.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/compressed_rep.h"
#include "core/shard_planner.h"
#include "exec/parallel_enumerator.h"
#include "exec/thread_pool.h"
#include "workload/catalog.h"
#include "workload/generators.h"

int main() {
  using namespace cqc;
  setvbuf(stdout, nullptr, _IOLBF, 0);
  using bench::Table;
  bench::BenchReport report("parallel_enumeration");

  bench::Banner(
      "E8: shard-parallel full enumeration",
      "tree split points give disjoint lex shards; K shards on T threads "
      "approach T-fold drain throughput");
  std::printf("host parallelism: %d thread(s)\n",
              ThreadPool::DefaultThreadCount());

  struct Workload {
    const char* name;
    Database db;
    AdornedView view;
    BoundValuation vb;
    double tau;
  };
  std::vector<Workload> workloads;
  {
    // Full enumeration of a 3-path: quadratic-ish output, no bound vars.
    Workload w{"path3_full", {}, PathView(3, "ffff"), {}, 32.0};
    MakePathRelations(w.db, "R", 3, 80, 1500, 21);
    workloads.push_back(std::move(w));
  }
  {
    // Heavy single request under Zipf skew: the serving-path shape.
    Workload w{"coauthor_heavy", {}, CoauthorView(), {1}, 16.0};
    MakeZipfBipartite(w.db, "R", 500, 2000, 10000, 0.9, 11);
    workloads.push_back(std::move(w));
  }

  for (Workload& w : workloads) {
    CompressedRepOptions copt;
    copt.tau = w.tau;
    auto rep = CompressedRep::Build(w.view, w.db, copt);
    if (!rep.ok()) {
      std::printf("build failed: %s\n", rep.status().message().c_str());
      return 1;
    }
    const int arity = w.view.num_free();

    // Sequential baseline (batched drain, best of 3).
    double seq_seconds = 1e300;
    size_t tuples = 0;
    for (int r = 0; r < 3; ++r) {
      auto e = rep.value()->Answer(w.vb);
      WallTimer t;
      tuples = DrainBatched(*e, arity, 1024);
      seq_seconds = std::min(seq_seconds, t.Seconds());
    }
    std::printf("\n[%s] output = %zu tuples, sequential %.2f Mt/s\n", w.name,
                tuples, tuples / seq_seconds / 1e6);

    Table table({"threads", "mode", "shards", "seconds", "Mt/s",
                 "speedup vs 1T", "efficiency"});
    double one_thread_seconds[2] = {0, 0};  // [ordered] baselines
    for (int threads : {1, 2, 4, 8}) {
      for (bool ordered : {true, false}) {
        ParallelOptions popt;
        popt.num_threads = threads;
        popt.ordered = ordered;
        double best = 1e300;
        size_t got = 0;
        for (int r = 0; r < 3; ++r) {
          auto e = ParallelAnswer(*rep.value(), w.vb, popt);
          WallTimer t;
          got = DrainBatched(*e, arity, 1024);
          best = std::min(best, t.Seconds());
        }
        if (got != tuples) {
          std::printf("MISMATCH: parallel saw %zu tuples, sequential %zu\n",
                      got, tuples);
          return 1;
        }
        // Speedup is against the 1-thread *parallel* run so the ratio
        // isolates scaling from the (small) pipeline overhead; the JSON
        // also records the sequential baseline.
        if (threads == 1) one_thread_seconds[ordered] = best;
        const double speedup = one_thread_seconds[ordered] / best;
        table.AddRow({StrFormat("%d", threads), ordered ? "ordered" : "unordered",
                      StrFormat("%zu", kShardsPerThread * (size_t)threads),
                      StrFormat("%.3f", best),
                      StrFormat("%.2f", tuples / best / 1e6),
                      StrFormat("%.2fx", speedup),
                      StrFormat("%.2f", speedup / threads)});
        report.AddRecord()
            .Set("experiment", "E8_parallel_enumeration")
            .Set("workload", w.name)
            .Set("threads", threads)
            .Set("mode", ordered ? "ordered" : "unordered")
            .Set("shards", (unsigned long)(kShardsPerThread * (size_t)threads))
            .Set("tuples", tuples)
            .Set("seconds", best)
            .Set("mtps", tuples / best / 1e6)
            .Set("sequential_seconds", seq_seconds)
            .Set("speedup_vs_1t", speedup)
            .Set("scaling_efficiency", speedup / threads)
            .Set("host_threads", ThreadPool::DefaultThreadCount());
      }
    }
    table.Print();
  }

  std::printf(
      "\nshape check: ordered mode reproduces the sequential stream byte "
      "for byte;\nunordered mode trades order for the last bit of "
      "throughput. Efficiency at\nT <= host threads should stay near 1.\n");
  return 0;
}

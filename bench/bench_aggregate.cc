// bench_aggregate: grouped COUNT/SUM answered inside the compressed
// structure (subtree ring annotations + interval arithmetic) vs the only
// strategy available without annotations — enumerate the answer stream and
// fold tuple by tuple.
//
// Two families bracket the answer-size regimes the paper analyzes:
//   * path3 — P_3^{ffff} over three random binary relations; ~N^2-ish
//     output, tree annotations (no bound variables).
//   * triangle — Example 1's tripartite worst case, full-free; Theta(m^3)
//     ordered answers from a 6 m^2 edge relation.
// For each family the bench sweeps group-by arity k = 0 / 1 / 2 over the
// lex prefix and runs COUNT plus SUM(last free var). The pushed path is
// measured as point-op throughput (MeasurePointOps; one AnswerAggregate
// call = one op), the fallback as a timed drain-and-fold over the same
// structure's enumerator, so the comparison isolates the aggregation
// strategy, not the structure.
//
// Every pushed result is compared against its drained twin before timing
// counts — a value mismatch is a correctness failure (exit 1), not a perf
// number.
//
// The gate (exit 1 on failure): on the full-group COUNT (k = 0) the pushed
// path must be at least CQC_AGG_MIN_SPEEDUP (default 100) times faster than
// enumerate-then-aggregate on BOTH families. That is the whole point of the
// annotations: a count that used to cost an output-sized drain becomes an
// O(1) annotation read.
//
// Env knobs: CQC_AGG_MIN_SPEEDUP (default 100).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/aggregate.h"
#include "core/compressed_rep.h"
#include "plan/answer_rep.h"
#include "query/adorned_view.h"
#include "util/timer.h"
#include "workload/catalog.h"
#include "workload/generators.h"

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtod(v, nullptr) : fallback;
}

}  // namespace

int main() {
  using namespace cqc;
  setvbuf(stdout, nullptr, _IOLBF, 0);
  bench::BenchReport report("aggregate");
  bench::Banner(
      "aggregate: pushed grouped COUNT/SUM vs enumerate-then-aggregate",
      "ring annotations over the Theorem 1 structure answer grouped "
      "aggregates by interval arithmetic, never touching the output");

  const double kMinSpeedup = EnvDouble("CQC_AGG_MIN_SPEEDUP", 100.0);
  constexpr int kDrainRepeats = 3;
  constexpr int kPushedRepeats = 3;

  struct Family {
    std::string name;
    AdornedView view;
    Database db;
    Family(std::string n, AdornedView v)
        : name(std::move(n)), view(std::move(v)) {}
  };
  std::vector<std::unique_ptr<Family>> families;
  families.push_back(std::make_unique<Family>("path3", PathView(3, "ffff")));
  MakePathRelations(families.back()->db, "R", 3, 400, 4000, 21);
  families.push_back(
      std::make_unique<Family>("triangle", TriangleView("fff")));
  MakeTripartiteTriangleGraph(families.back()->db, "R", 24);

  bool gate_failed = false;
  for (const auto& fam : families) {
    CompressedRepOptions copt;
    copt.build_aggregates = true;
    WallTimer build_timer;
    auto built = CompressedRep::Build(fam->view, fam->db, copt);
    if (!built.ok()) {
      std::fprintf(stderr, "%s build: %s\n", fam->name.c_str(),
                   built.status().message().c_str());
      return 1;
    }
    const double build_seconds = build_timer.Seconds();
    const size_t agg_bytes = built.value()->stats().agg_bytes;
    std::unique_ptr<AnswerRep> rep = WrapAnswerRep(std::move(built).value());
    const int mu = rep->view().num_free();
    const BoundValuation vb;  // full-free views: the empty request

    std::printf("\n%s: build=%.2fs  space=%s  annotations=%s  [%s]\n",
                fam->name.c_str(), build_seconds,
                bench::HumanBytes(rep->SpaceBytes()).c_str(),
                bench::HumanBytes(agg_bytes).c_str(),
                CapabilityTags(rep->capabilities()).c_str());
    bench::Table table({"request", "answers", "groups", "drain ms",
                        "pushed us/op", "speedup"});

    for (int k = 0; k <= 2; ++k) {
      std::vector<int> group_vars;
      for (int i = 0; i < k; ++i) group_vars.push_back(i);
      const std::vector<AggSpec> specs = {AggSpec::Count(),
                                          AggSpec::Sum(mu - 1)};
      for (const AggSpec& spec : specs) {
        const std::string label =
            StrFormat("%s_k%d", spec.func == AggFunc::kCount ? "count" : "sum",
                      k);

        // Reference: enumerate + fold, min-of-N.
        double drain_best = 1e300;
        AggregateResult drained;
        for (int r = 0; r < kDrainRepeats; ++r) {
          WallTimer t;
          auto e = rep->Answer(vb).value();
          drained = GroupedDrainAggregate(*e, mu, group_vars, spec);
          drain_best = std::min(drain_best, t.Seconds());
        }

        // Pushed, with a correctness check before any timing counts.
        AggregateResult pushed =
            rep->AnswerAggregate(vb, group_vars, spec).value();
        if (pushed != drained) {
          std::fprintf(stderr,
                       "FAIL: %s %s: pushed aggregate differs from "
                       "drain-and-fold\n",
                       fam->name.c_str(), label.c_str());
          return 1;
        }
        // One AnswerAggregate call is far below timer resolution for small
        // k, so a pass times a block of identical requests and divides; the
        // block size adapts to the (structural, so stable) cost of one op.
        WallTimer warmup;
        (void)rep->AnswerAggregate(vb, group_vars, spec).value();
        const size_t ops_per_pass = warmup.Seconds() > 1e-3 ? 4 : 64;
        const std::vector<BoundValuation> requests(ops_per_pass, vb);
        bench::PointOpStats ops = bench::MeasurePointOps(
            requests,
            [&](const BoundValuation& q) {
              return rep->AnswerAggregate(q, group_vars, spec)
                  .value()
                  .num_groups();
            },
            kPushedRepeats);

        const uint64_t answers =
            std::accumulate(drained.counts.begin(), drained.counts.end(),
                            (uint64_t)0);
        const double speedup =
            ops.us_per_op() > 0 ? drain_best * 1e6 / ops.us_per_op() : 0;
        table.AddRow({label, StrFormat("%llu", (unsigned long long)answers),
                      StrFormat("%zu", drained.num_groups()),
                      StrFormat("%.2f", drain_best * 1e3),
                      StrFormat("%.2f", ops.us_per_op()),
                      StrFormat("%.0fx", speedup)});
        report.AddRecord()
            .Set("experiment", fam->name)
            .Set("structure", label)
            .Set("answers", (unsigned long long)answers)
            .Set("groups", (unsigned long long)drained.num_groups())
            .Set("annotation_bytes", (unsigned long long)agg_bytes)
            .Set("enum_fold_seconds", drain_best)
            .Set("enum_fold_mtps",
                 drain_best > 0 ? answers / drain_best / 1e6 : 0)
            .Set("pushed_agg_mops", ops.mops())
            .Set("pushed_us_per_op", ops.us_per_op())
            .Set("speedup", speedup);

        if (k == 0 && spec.func == AggFunc::kCount &&
            speedup < kMinSpeedup) {
          std::fprintf(stderr,
                       "FAIL: %s full-group COUNT only %.1fx faster pushed "
                       "(gate %.0fx)\n",
                       fam->name.c_str(), speedup, kMinSpeedup);
          gate_failed = true;
        }
      }
    }
    table.Print();
  }
  report.Write();

  if (gate_failed) return 1;
  std::printf("\nPASS (gate: pushed full-group COUNT >= %.0fx on every "
              "family)\n",
              kMinSpeedup);
  return 0;
}

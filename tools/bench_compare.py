#!/usr/bin/env python3
"""Perf regression gate over BENCH_*.json files.

Compares freshly generated bench reports against the committed snapshots in
bench/baselines/ and fails (exit 1) when a gated metric regresses by more
than the threshold:

  * throughput metrics — lower is a regression. Gated by naming
    convention: every metric whose key ends in `_mtps` (millions of tuples
    or rows per second), `_mprobes` (millions of probes per second), or
    `_mops` (millions of point-answer ops per second: Count /
    AnswerExists / AnswerAggregate calls) is
    throughput-gated, which covers the drain headlines
    (drain_single_mtps, drain_batched_mtps), the per-kernel SIMD rows
    (scalar_mtps / dispatch_mtps / *_mprobes), and the batched hash-probe
    rate (hash_batch_mprobes) without further registration. When a record
    carries a `dispatch_level` and it differs between baseline and current
    run (e.g. the baseline was measured with AVX2 but the run is pinned by
    CQC_FORCE_SCALAR or on lesser hardware), the `dispatch_*` metrics are
    reported but not gated — only the level-independent `scalar_*` twins
    are comparable across dispatch levels;
  * delay percentiles (single_delay_us_p95, batched_delay_us_p95) — higher
    is a regression. Absolute changes under 25us are ignored: measured
    run-to-run variance of these wall-clock percentiles on a shared runner
    is ~2x at the 15-30us scale, while a real delay regression (a heavy
    pair evaluated eagerly, a batch stall) shows up as 100us+. The gate is
    therefore a backstop against order-of-magnitude delay blowups; the
    fine-grained signal is the deterministic worst_delay_ops counter in
    the same reports;
  * request-latency p99s — every metric whose key ends in `_p99_us`
    (BENCH_server's closed/open-loop tail latencies) is latency-gated:
    higher is a regression, but only past BOTH a 3x ratio and a 2.5ms
    absolute change. Wire round-trip tails on a shared runner carry
    scheduler noise of +-50% at the few-ms scale (a p99 over a short
    window is roughly the second-worst sample), so unlike the throughput
    gates this one is purely a backstop against real tail blowups — a
    stalled drain, a loop-thread convoy — which show up as 10x+, not
    tens of percent. A p99 is additionally gated only when both records
    report `requests` >= 200: below that a p99 is just the worst couple
    of samples (an open-loop probe at 50 qps over a short window has a
    few dozen), and its run-to-run swing is order-statistics noise, not
    a regression signal — such records are reported but never gated.
    `_kqps` joins the throughput suffixes (lower is a regression) for
    the same reports.

Records are matched by (experiment, structure). Metrics present in the
baseline but missing from the current run (or vice versa) are reported but
only missing *records* fail the gate — a renamed structure must update the
snapshot deliberately.

Usage:
  python3 tools/bench_compare.py --baseline bench/baselines --current build \
      [--threshold 0.15] [--bench micro --bench full_enumeration]
"""

import argparse
import json
import os
import sys

THROUGHPUT_SUFFIXES = ("_mtps", "_mprobes", "_mops", "_kqps")
DELAY_KEYS = ("single_delay_us_p95", "batched_delay_us_p95")
DELAY_ABS_FLOOR_US = 25.0
LATENCY_SUFFIX = "_p99_us"
LATENCY_RATIO_LIMIT = 3.0
LATENCY_ABS_FLOOR_US = 2500.0
LATENCY_MIN_SAMPLES = 200


def throughput_keys(rec):
    """Gated throughput metrics of a record, by suffix convention."""
    return sorted(k for k in rec
                  if any(k.endswith(s) for s in THROUGHPUT_SUFFIXES))


def latency_keys(rec):
    """Gated tail-latency metrics of a record, by suffix convention."""
    return sorted(k for k in rec if k.endswith(LATENCY_SUFFIX))


def load(path):
    with open(path) as f:
        return json.load(f)


def record_key(rec):
    # Parameter-sweep benches (e.g. BENCH_probe) have no `structure` field;
    # their identity is the sweep point, so fold the sweep parameters into
    # the key rather than collapsing every row onto one record.
    structure = rec.get("structure")
    if structure is None:
        structure = ",".join(f"{k}={rec[k]}"
                             for k in ("rows", "hit_rate") if k in rec) or "?"
    return (rec.get("experiment", "?"), structure)


def compare_bench(name, baseline, current, threshold):
    base_recs = {record_key(r): r for r in baseline.get("records", [])}
    cur_recs = {record_key(r): r for r in current.get("records", [])}
    failures, lines = [], []

    for key, base in sorted(base_recs.items()):
        cur = cur_recs.get(key)
        if cur is None:
            failures.append(f"{name} {key}: record missing from current run")
            continue
        level_mismatch = base.get("dispatch_level") != cur.get("dispatch_level")
        for metric in throughput_keys(base):
            if level_mismatch and metric.startswith("dispatch_"):
                lines.append(f"  {name:<18} {key[1]:<44} {metric:<22} "
                             f"not gated (dispatch level "
                             f"{base.get('dispatch_level')} -> "
                             f"{cur.get('dispatch_level')})")
                continue
            if metric not in cur:
                failures.append(f"{name} {key} {metric}: missing from current run")
                continue
            b, c = float(base[metric]), float(cur[metric])
            if b <= 0:
                continue
            ratio = c / b
            status = "ok"
            if ratio < 1.0 - threshold:
                status = "REGRESSION"
                failures.append(
                    f"{name} {key} {metric}: {b:.2f} -> {c:.2f} "
                    f"({(1 - ratio) * 100:.1f}% slower, limit {threshold * 100:.0f}%)"
                )
            lines.append(f"  {name:<18} {key[1]:<44} {metric:<22} "
                         f"{b:9.2f} -> {c:9.2f}  {status}")
        samples = min(int(base.get("requests", 0)), int(cur.get("requests", 0)))
        for metric in latency_keys(base):
            if metric not in cur:
                failures.append(f"{name} {key} {metric}: missing from current run")
                continue
            if samples < LATENCY_MIN_SAMPLES:
                lines.append(f"  {name:<18} {key[1]:<44} {metric:<22} "
                             f"not gated (p99 over {samples} samples)")
                continue
            b, c = float(base[metric]), float(cur[metric])
            if b <= 0:
                continue
            ratio = c / b
            status = "ok"
            if ratio > LATENCY_RATIO_LIMIT and c - b > LATENCY_ABS_FLOOR_US:
                status = "REGRESSION"
                failures.append(
                    f"{name} {key} {metric}: {b:.2f}us -> {c:.2f}us "
                    f"({ratio:.1f}x worse, limit {LATENCY_RATIO_LIMIT:.0f}x)"
                )
            lines.append(f"  {name:<18} {key[1]:<44} {metric:<22} "
                         f"{b:9.2f} -> {c:9.2f}  {status}")
        for metric in DELAY_KEYS:
            if metric not in base or metric not in cur:
                continue
            b, c = float(base[metric]), float(cur[metric])
            if b <= 0:
                continue
            ratio = c / b
            status = "ok"
            if ratio > 1.0 + threshold and c - b > DELAY_ABS_FLOOR_US:
                status = "REGRESSION"
                failures.append(
                    f"{name} {key} {metric}: {b:.2f}us -> {c:.2f}us "
                    f"({(ratio - 1) * 100:.1f}% worse, limit {threshold * 100:.0f}%)"
                )
            lines.append(f"  {name:<18} {key[1]:<44} {metric:<22} "
                         f"{b:9.2f} -> {c:9.2f}  {status}")
    return failures, lines


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", default="bench/baselines",
                    help="directory with committed BENCH_*.json snapshots")
    ap.add_argument("--current", default="build",
                    help="directory with freshly generated BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed relative regression (default 0.15)")
    ap.add_argument("--bench", action="append", default=None,
                    help="bench name(s) to gate (default: every baseline)")
    args = ap.parse_args()

    names = args.bench
    if not names:
        names = [f[len("BENCH_"):-len(".json")]
                 for f in sorted(os.listdir(args.baseline))
                 if f.startswith("BENCH_") and f.endswith(".json")]
    if not names:
        print(f"no baselines under {args.baseline}", file=sys.stderr)
        return 1

    all_failures = []
    print(f"bench gate: threshold {args.threshold * 100:.0f}%, "
          f"baselines from {args.baseline}")
    for name in names:
        base_path = os.path.join(args.baseline, f"BENCH_{name}.json")
        cur_path = os.path.join(args.current, f"BENCH_{name}.json")
        if not os.path.exists(base_path):
            all_failures.append(f"{name}: no baseline at {base_path}")
            continue
        if not os.path.exists(cur_path):
            all_failures.append(f"{name}: no current report at {cur_path}")
            continue
        failures, lines = compare_bench(name, load(base_path), load(cur_path),
                                        args.threshold)
        print("\n".join(lines))
        all_failures.extend(failures)

    if all_failures:
        print("\nFAIL: perf gate", file=sys.stderr)
        for f in all_failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nPASS: no gated metric regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Markdown link checker for the repo's docs (CI docs gate).

Scans the given markdown files for inline links/images `[text](target)`
and reference definitions `[id]: target`, and fails (exit 1) when a
*relative* target does not exist on disk. External schemes (http/https/
mailto) are not fetched — this gate is about intra-repo rot, not the
internet. Fragments are stripped before the existence check; a pure
fragment link (`#section`) is checked against the headings of the file it
appears in.

Usage:
  python3 tools/check_links.py README.md docs/*.md
"""

import os
import re
import sys

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*#*\s*$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def github_anchor(heading):
    """GitHub's anchor slug: lowercase, spaces to dashes, drop punctuation."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def check_file(path):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    # Links inside fenced code blocks are examples, not navigation.
    prose = CODE_FENCE.sub("", text)
    anchors = {github_anchor(h) for h in HEADING.findall(prose)}
    errors = []
    targets = INLINE_LINK.findall(prose) + REF_DEF.findall(prose)
    for target in targets:
        if target.startswith(EXTERNAL):
            continue
        if target.startswith("#"):
            if target[1:].lower() not in anchors:
                errors.append(f"{path}: dead anchor {target}")
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(path), rel))
        if not os.path.exists(resolved):
            errors.append(f"{path}: dead link {target} -> {resolved}")
    return errors, len(targets)


def main():
    files = sys.argv[1:]
    if not files:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    all_errors = []
    checked = 0
    for path in files:
        if not os.path.exists(path):
            all_errors.append(f"{path}: file not found")
            continue
        errors, n = check_file(path)
        checked += n
        all_errors.extend(errors)
    if all_errors:
        print("FAIL: dead links", file=sys.stderr)
        for e in all_errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"PASS: {checked} links across {len(files)} files, none dead")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// cqc_cli — build and query a planned answer representation (see Usage()).
//
// Reads one access request per line from stdin (bound values, in head
// order) and prints the matching free-variable tuples. With --plan auto
// (or any plan plus --space-budget B, an exponent: Sigma = N^B) the
// cost-based planner picks the structure and tau and prints its explain
// report to stderr. All serving goes through the AnswerRep interface, so
// every structure gets the same batch drain and (with --threads N > 1)
// the same shard-parallel enumeration where the structure supports it.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "core/serialization.h"
#include "plan/answer_rep.h"
#include "plan/planner.h"
#include "plan/script.h"
#include "query/normalize.h"
#include "query/parser.h"
#include "relational/csv.h"
#include "util/failpoint.h"
#include "util/request_context.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: cqc_cli --rel NAME=PATH:ARITY [--rel ...] --view VIEW\n"
      "               [--plan auto|compressed|decomposed|direct|materialized|"
      "updatable]\n"
      "               [--tau T] [--space-budget B] [--threads N] [--stats]\n"
      "               [--save PATH] [--load PATH | --load-mmap PATH]\n"
      "               [--mutate] [--churn RATE] [--agg-fraction F]\n"
      "               [--deadline-ms N] [--failpoint SPEC]\n"
      "--deadline-ms N gives every request an N-millisecond deadline; an\n"
      "expired request stops within one batch and reports DEADLINE_EXCEEDED.\n"
      "--failpoint SPEC arms a fault-injection site (site[=p[:skip[:max]]],\n"
      "repeatable; the CQC_FAILPOINTS env var works too — docs/robustness.md\n"
      "has the site catalog).\n"
      "--load reads a CQCREP05 file into heap memory; --load-mmap maps it\n"
      "zero-copy (opens in O(header) time, pages fault in on demand).\n"
      "--agg-fraction F prices F of the requests as grouped aggregates\n"
      "(builds annotations into the compressed/updatable candidates).\n"
      "then: one access request per line on stdin (bound values), or an\n"
      "aggregate request:\n"
      "  agg count <k> [bound...]          grouped COUNT over the first k\n"
      "                                    free variables\n"
      "  agg sum|min|max <var> <k> [bound...]  ring fold of free var <var>\n"
      "each group prints as: key values, count[, aggregate value].\n"
      "with --mutate, stdin is a script of interleaved mutations and\n"
      "queries (docs/update-semantics.md):\n"
      "  + REL v1 v2 ...   insert a tuple into REL\n"
      "  - REL v1 v2 ...   delete a tuple from REL\n"
      "  ? v1 v2 ...       access request (bound values)\n"
      "  agg ...           aggregate request (as above)\n"
      "  rebuild           fold the pending delta into the snapshot now\n"
      "  stats             print the structure state to stderr\n"
      "  # ...             comment\n"
      "a malformed or failed line prints an error naming the line and the\n"
      "process exits nonzero once the script finishes.\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cqc;
  Database db;
  std::string view_text, save_path, load_path, plan_name = "compressed";
  double tau = 1.0;
  double space_budget = -1;
  double churn = -1;  // <0 = unset; defaults to 0.5 in --mutate mode
  double agg_fraction = 0;
  bool want_stats = false;
  bool load_mmap = false;
  bool mutate = false;
  int threads = 1;
  long deadline_ms = 0;  // 0 = unbounded

  if (int n = failpoint::ArmFromEnv(); n > 0)
    std::fprintf(stderr, "armed %d failpoint(s) from CQC_FAILPOINTS\n", n);

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--rel") {
      std::string spec = next();
      size_t eq = spec.find('=');
      size_t colon = spec.rfind(':');
      if (eq == std::string::npos || colon == std::string::npos ||
          colon < eq) {
        std::fprintf(stderr, "bad --rel spec: %s\n", spec.c_str());
        return 2;
      }
      std::string name = spec.substr(0, eq);
      std::string path = spec.substr(eq + 1, colon - eq - 1);
      int arity = std::atoi(spec.c_str() + colon + 1);
      auto loaded = LoadRelationCsv(db, name, arity, path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "%s\n", loaded.status().message().c_str());
        return 1;
      }
      std::fprintf(stderr, "loaded %s: %zu tuples\n", name.c_str(),
                   loaded.value()->size());
    } else if (arg == "--view" || arg == "--plan" || arg == "--save" ||
               arg == "--load" || arg == "--load-mmap") {
      std::string& dst = arg == "--view"   ? view_text
                         : arg == "--plan" ? plan_name
                         : arg == "--save" ? save_path
                                           : load_path;
      if (arg == "--load-mmap") load_mmap = true;
      dst = next();
    } else if (arg == "--tau" || arg == "--space-budget" ||
               arg == "--churn" || arg == "--agg-fraction") {
      (arg == "--tau"            ? tau
       : arg == "--space-budget" ? space_budget
       : arg == "--churn"        ? churn
                                 : agg_fraction) = std::atof(next());
    } else if (arg == "--mutate") {
      mutate = true;
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--threads") {
      threads = std::atoi(next());
      if (threads < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return 2;
      }
    } else if (arg == "--deadline-ms") {
      deadline_ms = std::atol(next());
      if (deadline_ms < 1) {
        std::fprintf(stderr, "--deadline-ms must be >= 1\n");
        return 2;
      }
    } else if (arg == "--failpoint") {
      const char* spec = next();
      if (!failpoint::ArmSpec(spec)) {
        std::fprintf(stderr, "bad --failpoint spec: %s\n", spec);
        return 2;
      }
    } else {
      Usage();
      return 2;
    }
  }
  if (view_text.empty()) {
    Usage();
    return 2;
  }

  auto parsed = ParseAdornedView(view_text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "view: %s\n", parsed.status().message().c_str());
    return 1;
  }
  auto normalized = NormalizeView(parsed.value(), db);
  if (!normalized.ok()) {
    std::fprintf(stderr, "%s\n", normalized.status().message().c_str());
    return 1;
  }
  const AdornedView& view = normalized.value().view;
  const Database* aux = &normalized.value().aux_db;
  if (mutate) {
    // Normalization rewrites atoms with constants / repeated variables
    // into derived aux relations (R__n<k>). Mutations name *base*
    // relations, so the derived copies would silently go stale — reject
    // instead of serving wrong answers (the RepCache guards the same case
    // by invalidating such entries).
    for (const Atom& atom : view.cq().atoms()) {
      if (db.Find(atom.relation) != nullptr) continue;
      std::fprintf(stderr,
                   "--mutate requires a natural-join view (atom %s was "
                   "normalized into a derived relation that updates cannot "
                   "reach)\n",
                   atom.relation.c_str());
      return 2;
    }
  }

  // --mutate serves a mutable workload: the structure must be updatable,
  // and the planner prices the churn rate into the choice.
  if (mutate) {
    if (plan_name == "compressed") plan_name = "updatable";  // default flag
    if (plan_name != "updatable" && plan_name != "auto") {
      std::fprintf(stderr, "--mutate requires --plan updatable or auto\n");
      return 2;
    }
    if (!load_path.empty()) {
      std::fprintf(stderr, "--mutate cannot serve a %s'ed snapshot\n",
                   load_mmap ? "--load-mmap" : "--load");
      return 2;
    }
  }
  if (churn < 0) churn = mutate ? 0.5 : 0;

  std::unique_ptr<AnswerRep> rep;
  if (!load_path.empty()) {
    auto loaded = load_mmap ? MmapCompressedRep(view, db, load_path, aux)
                            : LoadCompressedRep(view, db, load_path, aux);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n", loaded.status().message().c_str());
      return 1;
    }
    rep = WrapAnswerRep(std::move(loaded).value());
    std::fprintf(stderr, "%s structure from %s\n",
                 load_mmap ? "mapped" : "loaded", load_path.c_str());
  } else {
    // One build path for every mode: the planner scores all candidates for
    // --plan auto and just the requested family otherwise.
    Planner planner(&db, aux);
    PlannerOptions popt;
    popt.space_budget_exponent = space_budget;
    popt.churn_per_request = churn;
    popt.aggregate_fraction = agg_fraction;
    std::optional<RepKind> fixed = ParseRepKind(plan_name);
    if (plan_name != "auto") {
      if (!fixed.has_value()) {
        std::fprintf(stderr, "unknown --plan %s\n", plan_name.c_str());
        return 2;
      }
      popt.consider_compressed = *fixed == RepKind::kCompressed;
      popt.consider_decomposed = *fixed == RepKind::kDecomposed;
      popt.consider_direct = *fixed == RepKind::kDirect;
      popt.consider_materialized = *fixed == RepKind::kMaterialized;
      popt.consider_updatable = *fixed == RepKind::kUpdatable;
      // The updatable candidate is scored only for mutable workloads.
      if (*fixed == RepKind::kUpdatable && popt.churn_per_request <= 0)
        popt.churn_per_request = 0.5;
    }
    auto planned = planner.PlanView(view, popt);
    if (!planned.ok()) {
      std::fprintf(stderr, "plan: %s\n", planned.status().message().c_str());
      return 1;
    }
    Plan plan = std::move(planned).value();
    if (plan_name == "auto" || space_budget > 0)
      std::fprintf(stderr, "%s", plan.Explain().c_str());
    if (!plan.within_budget) {
      std::fprintf(stderr, "space budget infeasible\n");
      return 1;
    }
    if (fixed == RepKind::kCompressed && space_budget <= 0) {
      plan.spec.compressed.tau = tau;  // manual knob without a budget
      plan.spec.compressed.cover.reset();
    }
    if (fixed == RepKind::kUpdatable && space_budget <= 0 && tau != 1.0) {
      plan.spec.updatable.rep.tau = tau;  // same manual knob, snapshot side
      plan.spec.updatable.rep.cover.reset();
    }
    auto built = planner.BuildPlan(view, plan);
    if (!built.ok()) {
      std::fprintf(stderr, "build: %s\n", built.status().message().c_str());
      return 1;
    }
    rep = std::move(built).value();
  }

  if (!save_path.empty()) {
    auto* compressed = dynamic_cast<const CompressedAnswerRep*>(rep.get());
    if (compressed == nullptr) {
      std::fprintf(stderr, "--save requires a compressed structure\n");
      return 2;
    }
    Status s = SaveCompressedRep(compressed->underlying(), save_path);
    if (!s.ok()) {
      std::fprintf(stderr, "save: %s\n", s.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "saved structure to %s\n", save_path.c_str());
  }
  if (mutate && !rep->capabilities().updatable) {
    // Reachable via --plan auto when a static candidate out-prices the
    // updatable one: refusing beats accepting a script whose mutations
    // all error while queries serve stale data.
    std::fprintf(stderr,
                 "--mutate needs an updatable structure but the plan chose "
                 "%s; raise --churn or use --plan updatable\n",
                 RepKindName(rep->kind()));
    return 2;
  }
  if (want_stats)
    std::fprintf(stderr, "%s build=%.3fs resident=%zuB\n",
                 rep->Describe().c_str(), rep->build_seconds(),
                 rep->ResidentBytes());

  std::fprintf(stderr, "ready: %d bound value(s) per request%s\n",
               view.num_bound(), mutate ? " (--mutate script mode)" : "");
  ParallelOptions popts;
  popts.num_threads = threads;
  popts.ordered = true;

  // Every request gets a fresh context: the deadline clock starts when the
  // request starts, not when the process did.
  auto make_ctx = [&]() -> std::optional<RequestContext> {
    if (deadline_ms <= 0) return std::nullopt;
    return RequestContext::WithTimeout(std::chrono::milliseconds(deadline_ms));
  };

  // One hardened entry point for every structure; --threads N > 1 drains
  // shard-parallel with an order-preserving merge where supported. Returns
  // false if the request errored (stream failed mid-drain, deadline, ...).
  auto serve = [&](const BoundValuation& vb) -> bool {
    const std::optional<RequestContext> ctx = make_ctx();
    const RequestContext* cp = ctx ? &*ctx : nullptr;
    auto stream = threads > 1 ? rep->ParallelAnswer(vb, popts, cp)
                              : rep->Answer(vb, cp);
    if (!stream.ok()) {
      std::fprintf(stderr, "%s\n", stream.status().message().c_str());
      return false;
    }
    TupleEnumerator& e = *stream.value();
    constexpr size_t kBatch = 512;
    TupleBuffer batch(view.num_free());
    size_t count = 0;
    for (;;) {
      batch.Clear();
      const size_t n = e.NextBatch(&batch, kBatch);
      count += n;
      for (size_t j = 0; j < n; ++j) {
        TupleSpan t = batch[j];
        for (size_t c = 0; c < t.size(); ++c)
          std::printf("%s%llu", c ? "," : "", (unsigned long long)t[c]);
        std::printf("\n");
      }
      if (n < kBatch) break;
    }
    // Exhaustion and failure look the same to NextBatch; StreamStatus says
    // which one it was.
    if (Status s = e.StreamStatus(); !s.ok()) {
      std::fprintf(stderr, "request failed after %zu tuple(s): %s\n", count,
                   s.message().c_str());
      return false;
    }
    std::fprintf(stderr, "(%zu tuples)\n", count);
    return true;
  };

  // Grouped ring aggregate over the first k free variables. Each group
  // prints as its key values, the count, and (for SUM/MIN/MAX) the folded
  // value, comma-separated.
  auto serve_agg = [&](const ScriptOp& op) -> bool {
    const std::optional<RequestContext> ctx = make_ctx();
    std::vector<int> group_vars;
    for (int i = 0; i < op.group_arity; ++i) group_vars.push_back(i);
    auto result = rep->AnswerAggregate(op.values, group_vars, op.agg,
                                       ctx ? &*ctx : nullptr);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().message().c_str());
      return false;
    }
    const AggregateResult& r = result.value();
    for (size_t g = 0; g < r.num_groups(); ++g) {
      for (int c = 0; c < r.group_arity; ++c)
        std::printf("%llu,",
                    (unsigned long long)r.keys[g * (size_t)r.group_arity + c]);
      std::printf("%llu", (unsigned long long)r.counts[g]);
      if (!r.values.empty())
        std::printf(",%llu", (unsigned long long)r.values[g]);
      std::printf("\n");
    }
    std::fprintf(stderr, "(%zu groups)\n", r.num_groups());
    return true;
  };

  // One strict parser for both modes (plan/script.h): a malformed line is
  // an error naming the offending token, never a silently wrong request.
  std::string line;
  size_t lineno = 0, errors = 0;
  while (std::getline(std::cin, line)) {
    ++lineno;
    auto parsed = ParseScriptLine(line, mutate);
    if (!parsed.ok()) {
      std::fprintf(stderr, "line %zu: %s\n", lineno,
                   parsed.status().message().c_str());
      ++errors;
      continue;
    }
    const ScriptOp& op = parsed.value();
    switch (op.kind) {
      case ScriptOp::Kind::kNoOp:
        break;
      case ScriptOp::Kind::kQuery:
        if (!serve(op.values)) ++errors;
        break;
      case ScriptOp::Kind::kAggregate:
        if (!serve_agg(op)) ++errors;
        break;
      case ScriptOp::Kind::kInsert:
      case ScriptOp::Kind::kDelete: {
        if (Status s = ValidateMutation(op, db); !s.ok()) {
          std::fprintf(stderr, "line %zu: %s\n", lineno, s.message().c_str());
          ++errors;
          break;
        }
        Status s = rep->ApplyDelta(
            {op.kind == ScriptOp::Kind::kInsert
                 ? UpdateOp::Insert(op.relation, Tuple(op.values))
                 : UpdateOp::Delete(op.relation, Tuple(op.values))});
        if (!s.ok()) {
          std::fprintf(stderr, "line %zu: %s\n", lineno, s.message().c_str());
          ++errors;
        }
        break;
      }
      case ScriptOp::Kind::kRebuild: {
        auto* up = dynamic_cast<UpdatableAnswerRep*>(rep.get());
        if (up == nullptr) {
          std::fprintf(stderr, "rebuild: structure is not updatable\n");
          ++errors;
          break;
        }
        if (Status s = up->Rebuild(); !s.ok()) {
          std::fprintf(stderr, "line %zu: %s\n", lineno, s.message().c_str());
          ++errors;
        }
        break;
      }
      case ScriptOp::Kind::kStats:
        std::fprintf(stderr, "%s\n", rep->Describe().c_str());
        break;
    }
  }
  if (errors > 0) {
    std::fprintf(stderr, "%zu line(s) failed\n", errors);
    return 1;
  }
  return 0;
}

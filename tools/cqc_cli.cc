// cqc_cli — build and query a compressed view from the command line.
//
// Usage:
//   cqc_cli --rel R=edges.csv:2 [--rel S=...] \
//           --view "Q^bfb(x,y,z) = R(x,y), R(y,z), R(z,x)" \
//           [--tau 64] [--space-budget 1.5] [--save rep.cqcrep] \
//           [--load rep.cqcrep] [--stats]
//
// Then reads one access request per line from stdin (bound values,
// whitespace-separated, in head order of the bound variables) and prints
// the matching free-variable tuples. With --space-budget B (an exponent:
// Sigma = N^B), the §6 MinDelayCover LP picks tau and the cover.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>

#include "core/compressed_rep.h"
#include "core/serialization.h"
#include "exec/parallel_enumerator.h"
#include "fractional/optimizer.h"
#include "query/normalize.h"
#include "query/parser.h"
#include "relational/csv.h"
#include "util/str_util.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: cqc_cli --rel NAME=PATH:ARITY [--rel ...] --view VIEW\n"
      "               [--tau T | --space-budget B] [--save PATH]\n"
      "               [--load PATH] [--stats] [--threads N]\n"
      "then: one access request per line on stdin (bound values).\n"
      "--threads N > 1 drains each request shard-parallel (order-preserving\n"
      "merge, so output order matches the sequential enumeration).\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cqc;
  Database db;
  std::string view_text, save_path, load_path;
  double tau = 1.0;
  double space_budget = -1;
  bool want_stats = false;
  int threads = 1;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--rel") {
      std::string spec = next();
      size_t eq = spec.find('=');
      size_t colon = spec.rfind(':');
      if (eq == std::string::npos || colon == std::string::npos ||
          colon < eq) {
        std::fprintf(stderr, "bad --rel spec: %s\n", spec.c_str());
        return 2;
      }
      std::string name = spec.substr(0, eq);
      std::string path = spec.substr(eq + 1, colon - eq - 1);
      int arity = std::atoi(spec.c_str() + colon + 1);
      auto loaded = LoadRelationCsv(db, name, arity, path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "%s\n", loaded.status().message().c_str());
        return 1;
      }
      std::fprintf(stderr, "loaded %s: %zu tuples\n", name.c_str(),
                   loaded.value()->size());
    } else if (arg == "--view") {
      view_text = next();
    } else if (arg == "--tau") {
      tau = std::atof(next());
    } else if (arg == "--space-budget") {
      space_budget = std::atof(next());
    } else if (arg == "--save") {
      save_path = next();
    } else if (arg == "--load") {
      load_path = next();
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--threads") {
      threads = std::atoi(next());
      if (threads < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return 2;
      }
    } else {
      Usage();
      return 2;
    }
  }
  if (view_text.empty()) {
    Usage();
    return 2;
  }

  auto parsed = ParseAdornedView(view_text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "view: %s\n", parsed.status().message().c_str());
    return 1;
  }
  auto normalized = NormalizeView(parsed.value(), db);
  if (!normalized.ok()) {
    std::fprintf(stderr, "%s\n", normalized.status().message().c_str());
    return 1;
  }
  const AdornedView& view = normalized.value().view;
  const Database* aux = &normalized.value().aux_db;

  CompressedRepOptions options;
  options.tau = tau;
  if (space_budget > 0) {
    Hypergraph h(view.cq());
    std::vector<double> log_sizes;
    for (const Atom& atom : view.cq().atoms()) {
      const Relation* r = ResolveRelation(atom.relation, db, aux);
      log_sizes.push_back(std::log(std::max<double>(2.0, (double)r->size())));
    }
    double log_n = 0;
    for (double ls : log_sizes) log_n = std::max(log_n, ls);
    CoverSolution sol = MinDelayCover(h, view.free_set(), log_sizes,
                                      space_budget * log_n);
    if (!sol.feasible) {
      std::fprintf(stderr, "space budget infeasible\n");
      return 1;
    }
    options.tau = std::exp(sol.log_tau);
    options.cover = sol.u;
    std::fprintf(stderr, "optimizer: tau = %.1f, alpha = %.2f\n",
                 options.tau, sol.alpha);
  }

  std::unique_ptr<CompressedRep> rep;
  if (!load_path.empty()) {
    auto loaded = LoadCompressedRep(view, db, load_path, aux);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n", loaded.status().message().c_str());
      return 1;
    }
    rep = std::move(loaded).value();
    std::fprintf(stderr, "loaded structure from %s\n", load_path.c_str());
  } else {
    auto built = CompressedRep::Build(view, db, options, aux);
    if (!built.ok()) {
      std::fprintf(stderr, "build: %s\n", built.status().message().c_str());
      return 1;
    }
    rep = std::move(built).value();
  }
  if (!save_path.empty()) {
    Status s = SaveCompressedRep(*rep, save_path);
    if (!s.ok()) {
      std::fprintf(stderr, "save: %s\n", s.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "saved structure to %s\n", save_path.c_str());
  }
  if (want_stats) {
    const CompressedRepStats& s = rep->stats();
    std::fprintf(stderr,
                 "tau=%.1f alpha=%.2f rho=%.2f tree=%zu nodes (depth %d) "
                 "dict=%zu entries aux=%zu B build=%.3fs\n",
                 rep->tau(), s.alpha, s.rho, s.tree_nodes, s.tree_depth,
                 s.dict_entries, s.AuxBytes(), s.build_seconds);
  }

  std::fprintf(stderr, "ready: %d bound value(s) per request\n",
               view.num_bound());
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    BoundValuation vb;
    Value v;
    while (in >> v) vb.push_back(v);
    if ((int)vb.size() != view.num_bound()) {
      std::fprintf(stderr, "expected %d values, got %zu\n",
                   view.num_bound(), vb.size());
      continue;
    }
    // Drain through the batch API: one NextBatch fill per kBatch rows keeps
    // the enumerator out of the per-line printf loop. With --threads N > 1
    // the shards of the answer space are drained concurrently and merged in
    // order, so stdout is identical either way.
    std::unique_ptr<TupleEnumerator> e;
    if (threads > 1 && view.num_free() > 0) {
      ParallelOptions popt;
      popt.num_threads = threads;
      popt.ordered = true;
      e = ParallelAnswer(*rep, vb, popt);
    } else {
      e = rep->Answer(vb);
    }
    constexpr size_t kBatch = 512;
    TupleBuffer batch(view.num_free());
    size_t count = 0;
    for (;;) {
      batch.Clear();
      const size_t n = e->NextBatch(&batch, kBatch);
      count += n;
      for (size_t j = 0; j < n; ++j) {
        TupleSpan t = batch[j];
        for (size_t i = 0; i < t.size(); ++i)
          std::printf("%s%llu", i ? "," : "", (unsigned long long)t[i]);
        std::printf("\n");
      }
      if (n < kBatch) break;
    }
    std::fprintf(stderr, "(%zu tuples)\n", count);
  }
  return 0;
}

// cqc_server — the long-lived network front end (docs/serving.md).
//
// Serves the cqc wire protocol (src/serve/protocol.h) over TCP: one
// request frame carries a tenant, an adorned view text, and one line of
// the cqc script grammar; responses stream the matching tuples back.
// Structures are built lazily per tenant through a byte-budgeted RepCache;
// concurrent identical queries coalesce into shared drains.
//
// --smoke runs a self-contained round trip (start on an ephemeral port,
// drive a client through query / aggregate / mutation / stats / malformed
// frames, check every answer) and exits 0/1 — the CI smoke test.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "relational/csv.h"
#include "relational/database.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/failpoint.h"
#include "workload/generators.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: cqc_server [--rel NAME=PATH:ARITY ...] [--gen path2|path3|"
      "triangle]\n"
      "                  [--gen-nodes N] [--gen-edges E] [--host H] "
      "[--port P]\n"
      "                  [--workers N] [--max-sessions N] "
      "[--budget-bytes B]\n"
      "                  [--churn RATE] [--no-coalesce] "
      "[--max-deadline-ms N]\n"
      "                  [--smoke]\n"
      "--gen builds a synthetic database (workload/generators.h) instead\n"
      "of loading CSVs: path2/path3 make R1..Rn random graphs, triangle\n"
      "makes the tripartite triangle relation R.\n"
      "--budget-bytes bounds each tenant's RepCache resident footprint;\n"
      "--churn > 0 lets the planner pick updatable structures so wire\n"
      "mutations (+/- lines) have somewhere to land.\n"
      "--smoke: self-contained protocol round trip on an ephemeral port\n"
      "(the CI health check); exits nonzero on any mismatch.\n");
}

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

int Fail(const char* what, const cqc::Status& s) {
  std::fprintf(stderr, "smoke: %s: %s\n", what, s.message().c_str());
  return 1;
}

/// Drives one client through every request kind plus a protocol-error
/// path, checking exact answers against the generated database.
int RunSmoke(const cqc::Database& db, cqc::serve::ServerOptions opts) {
  using namespace cqc;
  using namespace cqc::serve;
  opts.port = 0;
  opts.cache.planner.churn_per_request = 0.5;  // wire mutations need
                                               // an updatable structure
  CqcServer server(&db, opts);
  if (Status s = server.Start(); !s.ok()) return Fail("start", s);
  std::fprintf(stderr, "smoke: serving on port %d\n", server.port());

  Client client;
  if (Status s = client.Connect("127.0.0.1", server.port()); !s.ok())
    return Fail("connect", s);

  const std::string view = "Q^bff(x,y,z) = R1(x,y), R2(y,z)";
  WireRequest req;
  req.view = view;
  req.deadline_ms = 30'000;

  // 1. Ping: an empty body is a no-op line and must answer OK.
  req.request_id = 1;
  req.body = "";
  WireResponse resp;
  if (Status s = client.Call(req, &resp); !s.ok()) return Fail("ping", s);
  if (resp.code != StatusCode::kOk || resp.request_id != 1)
    return Fail("ping", Status::Error("unexpected ping response"));

  // 2. Query for x=1, checked against a direct scan of the base tables.
  req.request_id = 2;
  req.body = "? 1";
  if (Status s = client.Call(req, &resp); !s.ok()) return Fail("query", s);
  if (resp.code != StatusCode::kOk)
    return Fail("query", Status::Error(resp.message));
  size_t expect = 0;
  const Relation* r1 = db.Find("R1");
  const Relation* r2 = db.Find("R2");
  if (r1 == nullptr || r2 == nullptr)
    return Fail("query", Status::Error("generated relations missing"));
  for (size_t i = 0; i < r1->size(); ++i) {
    if (r1->At(i, 0) != 1) continue;
    for (size_t j = 0; j < r2->size(); ++j)
      if (r2->At(j, 0) == r1->At(i, 1)) ++expect;
  }
  if (resp.num_rows() != expect || resp.arity != 2)
    return Fail("query",
                Status::Error("row count mismatch vs base-table scan"));
  std::fprintf(stderr, "smoke: query ok (%zu rows)\n", resp.num_rows());

  // 3. Grouped aggregate: total COUNT for the same bound x must equal the
  // enumeration's row count.
  req.request_id = 3;
  req.body = "agg count 1 1";
  if (Status s = client.Call(req, &resp); !s.ok()) return Fail("agg", s);
  if (resp.code != StatusCode::kOk)
    return Fail("agg", Status::Error(resp.message));
  uint64_t total = 0;
  for (size_t g = 0; g < resp.num_rows(); ++g)
    total += resp.values[g * resp.arity + 1];  // key, count
  if (total != expect)
    return Fail("agg", Status::Error("aggregate count != enumeration"));

  // 4. Mutation + re-query: a new R2 edge from every y reached by x=1
  // grows the answer; the delta must be visible to the next read.
  req.request_id = 4;
  req.body = "+ R2 999999 999998";
  if (Status s = client.Call(req, &resp); !s.ok()) return Fail("insert", s);
  if (resp.code != StatusCode::kOk)
    return Fail("insert", Status::Error(resp.message));

  // 5. Stats describes the (now mutated) structure.
  req.request_id = 5;
  req.body = "stats";
  if (Status s = client.Call(req, &resp); !s.ok()) return Fail("stats", s);
  if (resp.code != StatusCode::kOk || resp.message.empty())
    return Fail("stats", Status::Error("empty stats response"));

  // 6. A malformed body must answer a line-addressable parse error and
  // keep the connection usable.
  req.request_id = 6;
  req.body = "? 1 bogus";
  if (Status s = client.Call(req, &resp); !s.ok())
    return Fail("parse error", s);
  if (resp.code != StatusCode::kError || resp.error_offset == kNoOffset)
    return Fail("parse error",
                Status::Error("expected an offset-addressed parse error"));
  req.request_id = 7;
  req.body = "? 1";
  if (Status s = client.Call(req, &resp); !s.ok())
    return Fail("post-error query", s);
  if (resp.code != StatusCode::kOk)
    return Fail("post-error query", Status::Error(resp.message));

  // 7. A corrupt frame kills only this connection, with an offset.
  const std::string bad("\x08\x00\x00\x00garbage!", 12);
  if (Status s = client.SendRaw(bad); !s.ok()) return Fail("corrupt", s);
  if (Status s = client.ReadResponse(&resp); !s.ok())
    return Fail("corrupt", s);
  if (resp.code != StatusCode::kError)
    return Fail("corrupt", Status::Error("expected a protocol error"));
  client.Close();

  server.Stop();
  const ServerStats st = server.stats();
  std::fprintf(stderr,
               "smoke: ok (%llu frames, %llu ok, %llu failed, %llu protocol "
               "errors, %llu open fds)\n",
               (unsigned long long)st.frames_received,
               (unsigned long long)st.requests_ok,
               (unsigned long long)st.requests_failed,
               (unsigned long long)st.protocol_errors,
               (unsigned long long)st.open_fds);
  if (st.open_fds != 0 || st.active_sessions != 0)
    return Fail("teardown", Status::Error("leaked sessions or fds"));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cqc;
  Database db;
  serve::ServerOptions opts;
  std::string gen;
  uint64_t gen_nodes = 1000;
  size_t gen_edges = 5000;
  bool smoke = false;
  bool loaded_any = false;

  if (int n = failpoint::ArmFromEnv(); n > 0)
    std::fprintf(stderr, "armed %d failpoint(s) from CQC_FAILPOINTS\n", n);

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--rel") {
      std::string spec = next();
      size_t eq = spec.find('=');
      size_t colon = spec.rfind(':');
      if (eq == std::string::npos || colon == std::string::npos ||
          colon < eq) {
        std::fprintf(stderr, "bad --rel spec: %s\n", spec.c_str());
        return 2;
      }
      auto loaded = LoadRelationCsv(db, spec.substr(0, eq),
                                    std::atoi(spec.c_str() + colon + 1),
                                    spec.substr(eq + 1, colon - eq - 1));
      if (!loaded.ok()) {
        std::fprintf(stderr, "%s\n", loaded.status().message().c_str());
        return 1;
      }
      loaded_any = true;
    } else if (arg == "--gen") {
      gen = next();
    } else if (arg == "--gen-nodes") {
      gen_nodes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--gen-edges") {
      gen_edges = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--host") {
      opts.host = next();
    } else if (arg == "--port") {
      opts.port = std::atoi(next());
    } else if (arg == "--workers") {
      opts.worker_threads = std::atoi(next());
    } else if (arg == "--max-sessions") {
      opts.max_sessions = (size_t)std::strtoull(next(), nullptr, 10);
    } else if (arg == "--budget-bytes") {
      opts.cache.max_resident_bytes =
          (size_t)std::strtoull(next(), nullptr, 10);
    } else if (arg == "--churn") {
      opts.cache.planner.churn_per_request = std::atof(next());
    } else if (arg == "--no-coalesce") {
      opts.coalesce_reads = false;
    } else if (arg == "--max-deadline-ms") {
      opts.max_deadline_ms = (uint32_t)std::strtoul(next(), nullptr, 10);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      Usage();
      return 2;
    }
  }

  if (gen.empty() && !loaded_any) gen = "path2";  // serve something
  if (gen == "path2" || gen == "path3") {
    const int n = gen == "path2" ? 2 : 3;
    MakePathRelations(db, "R", n, gen_nodes, gen_edges, /*seed=*/42);
    std::fprintf(stderr, "generated %d path relations (%llu nodes, %zu "
                 "edges each)\n",
                 n, (unsigned long long)gen_nodes, gen_edges);
  } else if (gen == "triangle") {
    const uint64_t m = gen_nodes < 2 ? 2 : gen_nodes;
    MakeTripartiteTriangleGraph(db, "R", m);
    std::fprintf(stderr, "generated tripartite triangle graph (m=%llu)\n",
                 (unsigned long long)m);
  } else if (!gen.empty()) {
    std::fprintf(stderr, "unknown --gen family: %s\n", gen.c_str());
    return 2;
  }

  if (smoke) return RunSmoke(db, opts);

  serve::CqcServer server(&db, opts);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "cqc_server listening on %s:%d\n", opts.host.c_str(),
               server.port());
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop) {
    struct timespec ts = {0, 200 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  server.Stop();
  const serve::ServerStats st = server.stats();
  std::fprintf(stderr,
               "served %llu frames (%llu ok, %llu failed, %llu coalesced "
               "reads over %llu shared drains)\n",
               (unsigned long long)st.frames_received,
               (unsigned long long)st.requests_ok,
               (unsigned long long)st.requests_failed,
               (unsigned long long)st.coalesced_reads,
               (unsigned long long)st.shared_drains);
  return 0;
}
